//! The multi-tree JITD runtime: a fleet of plans over one rule set.
//!
//! The paper's motivating deployments never optimize a single tree:
//! Spark hands the optimizer ~1000-node plans in bursts and Orca streams
//! independent optimizations (§2, §7). [`JitdFleet`] models that shape —
//! one [`JitdIndex`] per [`TreeId`]-tagged shard, all maintained by a
//! [`ForestEngine`] that shares the compiled rule/pattern state across
//! the fleet while keeping every shard's views, indexes, and epoch
//! buffers private. Operations route to the shard they address;
//! reorganization, epochs, and consistency checks are all per-tree, so
//! a burst landing on one plan never touches (or flushes) another
//! plan's maintenance state.
//!
//! Instrumentation mirrors the single-tree [`Jitd`](crate::Jitd)
//! runtime: search / rewrite / maintenance / commit latencies pool into
//! one [`JitdStats`] across the fleet, which is exactly what the
//! multi-tree bench cells (workloads G, H, and I) report.
//!
//! Reorganization is scheduled by **heat**, not round-robin: write
//! operations bump their shard's heat counter; once a shard crosses the
//! configured threshold it joins a pending queue, and
//! [`reorganize_next`](JitdFleet::reorganize_next) serves the *hottest*
//! pending shard first. Serving a shard out of arrival order is counted
//! in [`JitdStats::steal_count`] — the single-threaded mirror of the
//! [`steal`](crate::steal) pool's scheduling (same policy, no atomics).
//! The explicit per-tree entry points (`reorganize_round`,
//! `reorganize_until_quiet`) are unchanged, so callers that want
//! round-robin ticking still get it — and the steal-equivalence suite
//! pins that both schedules produce structurally identical fleets.

use crate::index::JitdIndex;
use crate::rules::{paper_rules, RuleConfig};
use crate::runtime::{JitdStats, StepOutcome, StrategyKind};
use crate::schema::jitd_schema;
use std::sync::Arc;
use treetoaster_core::{ForestEngine, MatchSource, ReplaceCtx, RuleFired, RuleId, RuleSet};
use tt_ast::{Record, TreeId};
use tt_metrics::now_ns;
use tt_pattern::{matches_with, AutomatonScratch, Bindings};
use tt_ycsb::Op;

/// A fleet of JITD indexes maintained by per-shard strategies.
///
/// # Example
///
/// ```
/// use tt_ast::{Record, TreeId};
/// use tt_jitd::{JitdFleet, RuleConfig, StrategyKind};
/// use tt_ycsb::Op;
///
/// // Three plans, each preloaded with its own key space.
/// let mut fleet = JitdFleet::new(
///     StrategyKind::TreeToaster,
///     RuleConfig { crack_threshold: 8 },
///     3,
///     |t| (0..32).map(|k| Record::new(k, k * 10 + t as i64)).collect(),
/// );
/// let t1 = TreeId::from_index(1);
/// // Writes heat their shard; the scheduler serves the hottest first.
/// fleet.execute(t1, &Op::Insert { key: 99, value: 7 });
/// assert_eq!(fleet.heat_of(t1), 1);
/// let (served, _steps) = fleet.reorganize_next(u64::MAX).unwrap();
/// assert_eq!(served, t1);
/// assert_eq!(fleet.index_of(t1).get(99), Some(7));
/// fleet.check_strategy_consistent().unwrap();
/// ```
pub struct JitdFleet {
    indexes: Vec<JitdIndex>,
    engine: ForestEngine<Box<dyn MatchSource>>,
    rules: Arc<RuleSet>,
    kind: StrategyKind,
    /// Per-tree rewrite ticks, so each shard evolves exactly as an
    /// independent single-tree runtime would (ticks feed generator
    /// attribute computation, e.g. the CrackArray pivot choice).
    ticks: Vec<u64>,
    /// Reusable binding environment shared across shards (one rewrite is
    /// in flight at a time).
    bindings: Bindings,
    /// Scratch for the compiled re-derivation's straight-line program.
    scratch: AutomatonScratch,
    /// Matcher selection, mirrored into every shard's strategy.
    compiled: bool,
    /// Write ops absorbed per shard since it was last scheduled.
    heat: Vec<u64>,
    /// Pending shard indexes, arrival order (each at most once).
    pending: std::collections::VecDeque<usize>,
    /// Dedup flag per shard: true while it sits in `pending`.
    queued: Vec<bool>,
    /// Writes a shard absorbs before it joins the pending queue.
    heat_threshold: u64,
    /// Tree indexes with a sealed epoch awaiting
    /// [`apply_next_commit`](JitdFleet::apply_next_commit), arrival
    /// order (each at most once) — the single-threaded mirror of the
    /// threaded committer's queue ([`crate::concurrent`]).
    pending_commits: std::collections::VecDeque<usize>,
    /// Dedup flag per shard: true while it sits in `pending_commits`.
    queued_commit: Vec<bool>,
    /// Epochs landed per shard by the committer half of the pipeline —
    /// the mirror of the threaded fleet's published generations.
    generations: Vec<u64>,
    /// Pooled measurements across the fleet.
    pub stats: JitdStats,
}

impl JitdFleet {
    /// Builds a fleet of `trees` shards, each preloaded with
    /// `records_per_tree(t)` and maintained by a fresh `kind` strategy
    /// over one shared rule set.
    pub fn new(
        kind: StrategyKind,
        config: RuleConfig,
        trees: usize,
        records_per_tree: impl FnMut(usize) -> Vec<Record>,
    ) -> JitdFleet {
        Self::with_matcher(kind, config, trees, records_per_tree, true)
    }

    /// [`new`](JitdFleet::new) with an explicit matcher choice —
    /// `compiled = false` runs the one-pattern-at-a-time baseline on
    /// every shard (strategy search *and* binding re-derivation).
    pub fn with_matcher(
        kind: StrategyKind,
        config: RuleConfig,
        trees: usize,
        mut records_per_tree: impl FnMut(usize) -> Vec<Record>,
        compiled: bool,
    ) -> JitdFleet {
        assert!(trees > 0, "a fleet needs at least one tree");
        let schema = jitd_schema();
        let rules = Arc::new(paper_rules(&schema, config));
        let indexes: Vec<JitdIndex> = (0..trees)
            .map(|t| JitdIndex::load(records_per_tree(t)))
            .collect();
        let mut engine: ForestEngine<Box<dyn MatchSource>> = ForestEngine::new(rules.clone());
        for index in &indexes {
            engine.add_shard_for(index.ast(), |r, ast| kind.build_with(r, ast, compiled));
        }
        for (t, index) in indexes.iter().enumerate() {
            engine.rebuild_tree(TreeId::from_index(t as u32), index.ast());
        }
        let stats = JitdStats::new(rules.len());
        JitdFleet {
            indexes,
            engine,
            rules,
            kind,
            ticks: vec![0; trees],
            bindings: Bindings::default(),
            scratch: AutomatonScratch::default(),
            compiled,
            heat: vec![0; trees],
            pending: std::collections::VecDeque::with_capacity(trees),
            queued: vec![false; trees],
            heat_threshold: 1,
            pending_commits: std::collections::VecDeque::with_capacity(trees),
            queued_commit: vec![false; trees],
            generations: vec![0; trees],
            stats,
        }
    }

    /// Number of shards in the fleet.
    pub fn tree_count(&self) -> usize {
        self.indexes.len()
    }

    /// All shard ids.
    pub fn tree_ids(&self) -> impl Iterator<Item = TreeId> {
        (0..self.indexes.len() as u32).map(TreeId::from_index)
    }

    /// The shared rule set.
    pub fn rules(&self) -> &Arc<RuleSet> {
        &self.rules
    }

    /// Which strategy kind every shard runs.
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// One shard's index.
    pub fn index_of(&self, tree: TreeId) -> &JitdIndex {
        &self.indexes[tree.index() as usize]
    }

    /// The engine maintaining the fleet (per-shard strategy access).
    pub fn engine(&self) -> &ForestEngine<Box<dyn MatchSource>> {
        &self.engine
    }

    /// Executes one YCSB operation against `tree`, notifying only that
    /// shard's strategy (graft maintenance is timed into the pooled
    /// stats, as in the single-tree runtime).
    pub fn execute(&mut self, tree: TreeId, op: &Op) {
        let t0 = now_ns();
        let ti = tree.index() as usize;
        match *op {
            Op::Read { key } => {
                std::hint::black_box(self.indexes[ti].get(key));
            }
            Op::Scan { key, len } => {
                std::hint::black_box(self.indexes[ti].scan(key, len));
            }
            Op::Update { key, value } => {
                self.graft(tree, |idx| idx.wrap_delete(key));
                self.graft(tree, |idx| idx.wrap_insert(key, value));
                self.note_write(ti);
            }
            Op::Insert { key, value } => {
                self.graft(tree, |idx| idx.wrap_insert(key, value));
                self.note_write(ti);
            }
            Op::ReadModifyWrite { key, value } => {
                let prior = self.indexes[ti].get(key).unwrap_or(0);
                self.graft(tree, |idx| idx.wrap_delete(key));
                self.graft(tree, |idx| idx.wrap_insert(key, value ^ prior));
                self.note_write(ti);
            }
        }
        self.stats.op_ns.push_u64(now_ns() - t0);
    }

    /// Deletes a key from `tree`.
    pub fn delete(&mut self, tree: TreeId, key: i64) {
        let t0 = now_ns();
        self.graft(tree, |idx| idx.wrap_delete(key));
        self.note_write(tree.index() as usize);
        self.stats.op_ns.push_u64(now_ns() - t0);
    }

    /// Records one write against shard `ti`, enqueueing it for the heat
    /// scheduler once it crosses the threshold.
    fn note_write(&mut self, ti: usize) {
        self.heat[ti] += 1;
        if self.heat[ti] >= self.heat_threshold && !self.queued[ti] {
            self.queued[ti] = true;
            self.pending.push_back(ti);
        }
    }

    /// Sets how many writes a shard absorbs before the heat scheduler
    /// queues it (default 1: every write enqueues, matching the
    /// dedicated-worker model's eagerness).
    pub fn set_heat_threshold(&mut self, writes: u64) {
        self.heat_threshold = writes.max(1);
    }

    /// Writes shard `tree` absorbed since it was last scheduled.
    pub fn heat_of(&self, tree: TreeId) -> u64 {
        self.heat[tree.index() as usize]
    }

    /// Shards currently waiting for the scheduler.
    pub fn pending_shards(&self) -> usize {
        self.pending.len()
    }

    /// Serves the **hottest** pending shard: pops it from the queue,
    /// resets its heat, and reorganizes it until quiescent (or
    /// `max_steps` rewrites — a shard cut off by the cap goes straight
    /// back on the queue, so a bounded drain never strands backlog).
    /// Returns the shard served and the rewrites applied, or `None`
    /// when nothing is pending. A pop that bypasses FIFO arrival order
    /// to serve a hotter shard counts into [`JitdStats::steal_count`] —
    /// under skew the hot minority repeatedly jumps the queue, which is
    /// exactly the scheduling the threaded pool ([`crate::steal`])
    /// distributes across workers.
    pub fn reorganize_next(&mut self, max_steps: u64) -> Option<(TreeId, u64)> {
        let (pos, _) = self
            .pending
            .iter()
            .enumerate()
            .max_by_key(|&(pos, &ti)| (self.heat[ti], std::cmp::Reverse(pos)))?;
        let ti = self.pending.remove(pos).expect("position from enumerate");
        if pos != 0 {
            self.stats.steal_count += 1;
        }
        self.queued[ti] = false;
        self.heat[ti] = 0;
        let tree = TreeId::from_index(ti as u32);
        let steps = self.reorganize_until_quiet(tree, max_steps);
        if max_steps > 0 && steps >= max_steps {
            // The cap, not quiescence, ended the drain: the shard may
            // still hold matches, so it stays scheduled.
            self.queued[ti] = true;
            self.pending.push_back(ti);
        }
        Some((tree, steps))
    }

    /// Drains the pending queue hottest-first; returns total rewrites.
    pub fn reorganize_pending(&mut self, max_steps: u64) -> u64 {
        let mut applied = 0;
        while let Some((_, steps)) = self.reorganize_next(max_steps) {
            applied += steps;
        }
        applied
    }

    fn graft(&mut self, tree: TreeId, wrap: impl FnOnce(&mut JitdIndex) -> Vec<tt_ast::NodeId>) {
        let ti = tree.index() as usize;
        let created = wrap(&mut self.indexes[ti]);
        let m0 = now_ns();
        self.engine.on_graft(tree, self.indexes[ti].ast(), &created);
        self.stats.op_maintain_ns.push_u64(now_ns() - m0);
    }

    /// One optimizer iteration for `rule` on `tree`: search, apply,
    /// maintain — the per-shard mirror of
    /// [`Jitd::reorganize_step`](crate::Jitd::reorganize_step).
    pub fn reorganize_step(&mut self, tree: TreeId, rule: RuleId) -> StepOutcome {
        let ti = tree.index() as usize;
        let s0 = now_ns();
        let site = self.engine.find_one(tree, self.indexes[ti].ast(), rule);
        let search_ns = now_ns() - s0;
        self.stats.search_ns[rule].push_u64(search_ns);
        let Some(site) = site else {
            return StepOutcome {
                fired: false,
                search_ns,
                rewrite_ns: 0,
                maintain_ns: 0,
            };
        };

        self.stats.rule_matches[rule] += 1;
        let rule_def = self.rules.get(rule);
        let mut bindings = std::mem::take(&mut self.bindings);
        let live = if self.compiled {
            let hit = self.rules.automaton().run_rule(
                self.indexes[ti].ast(),
                site,
                rule,
                &mut self.scratch,
            );
            if hit {
                bindings.clone_from(self.scratch.bindings());
            }
            hit
        } else {
            matches_with(
                self.indexes[ti].ast(),
                site,
                &rule_def.pattern,
                &mut bindings,
            )
        };
        assert!(
            live,
            "strategy returned a stale match — view maintenance bug"
        );

        let m0 = now_ns();
        self.engine
            .before_replace(tree, self.indexes[ti].ast(), site, Some((rule, &bindings)));
        let pre_maintain = now_ns() - m0;

        let r0 = now_ns();
        let applied = rule_def.apply(self.indexes[ti].ast_mut(), site, &bindings, self.ticks[ti]);
        self.ticks[ti] += 1;
        let rewrite_ns = now_ns() - r0;

        let ctx = ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: Some(RuleFired {
                rule,
                bindings: &bindings,
                applied: &applied,
            }),
        };
        let m1 = now_ns();
        self.engine
            .after_replace(tree, self.indexes[ti].ast(), &ctx);
        let maintain_ns = pre_maintain + (now_ns() - m1);
        self.bindings = bindings;

        self.stats.rewrite_ns[rule].push_u64(rewrite_ns);
        self.stats.maintain_ns[rule].push_u64(maintain_ns);
        self.stats.rule_rewrites[rule] += 1;
        self.stats.steps += 1;
        StepOutcome {
            fired: true,
            search_ns,
            rewrite_ns,
            maintain_ns,
        }
    }

    /// Tries every rule once on `tree`; returns how many fired.
    pub fn reorganize_round(&mut self, tree: TreeId) -> usize {
        (0..self.rules.len())
            .filter(|&rid| self.reorganize_step(tree, rid).fired)
            .count()
    }

    /// Reorganizes `tree` until quiescent or `max_steps` rewrites.
    pub fn reorganize_until_quiet(&mut self, tree: TreeId, max_steps: u64) -> u64 {
        let start = self.stats.steps;
        while self.stats.steps - start < max_steps {
            if self.reorganize_round(tree) == 0 {
                break;
            }
        }
        self.stats.steps - start
    }

    /// Opens a maintenance epoch on one shard (others untouched).
    pub fn begin_batch(&mut self, tree: TreeId) {
        self.engine.begin_batch(tree);
    }

    /// Commits one shard's epoch, timing the flush into the pooled
    /// commit stream. Other shards' epochs stay open.
    pub fn commit_batch(&mut self, tree: TreeId) {
        let t0 = now_ns();
        self.engine.commit_batch(tree);
        self.stats.commit_ns.push_u64(now_ns() - t0);
    }

    /// Seals one shard's open epoch for a deferred apply instead of
    /// committing it inline: only the seal is timed into the pooled
    /// commit stream, and the shard joins the pending-commit queue
    /// (dedup — a re-submit before the apply folds into one, matching
    /// the strategy's own one-epoch-in-flight backpressure). Returns
    /// `true` if an epoch was actually sealed; an empty epoch seals
    /// nothing and queues nothing. The single-threaded mirror of
    /// [`AsyncJitd::submit_commit_on`](crate::AsyncJitd::submit_commit_on)
    /// under [`CommitMode::Async`](crate::CommitMode::Async).
    pub fn submit_commit(&mut self, tree: TreeId) -> bool {
        let t0 = now_ns();
        let sealed = self.engine.submit_commit(tree);
        self.stats.commit_ns.push_u64(now_ns() - t0);
        let ti = tree.index() as usize;
        if sealed && !self.queued_commit[ti] {
            self.queued_commit[ti] = true;
            self.pending_commits.push_back(ti);
        }
        sealed
    }

    /// The committer half of the pipelined commit: pops the oldest
    /// pending shard, applies its sealed epoch, and advances its
    /// committed generation. Returns the shard served, or `None` when
    /// no commit is pending. (A shard whose sealed epoch was already
    /// absorbed by its own backpressure still pops, but bumps no
    /// generation.)
    pub fn apply_next_commit(&mut self) -> Option<TreeId> {
        let ti = self.pending_commits.pop_front()?;
        self.queued_commit[ti] = false;
        let tree = TreeId::from_index(ti as u32);
        if self.engine.apply_submitted(tree) {
            self.generations[ti] += 1;
        }
        Some(tree)
    }

    /// Drains the pending-commit queue in arrival order; returns how
    /// many shards were served.
    pub fn drain_commits(&mut self) -> usize {
        let mut served = 0;
        while self.apply_next_commit().is_some() {
            served += 1;
        }
        served
    }

    /// Shards with a sealed epoch awaiting the committer.
    pub fn commits_pending(&self) -> usize {
        self.pending_commits.len()
    }

    /// True while `tree` holds a sealed epoch its committer has not
    /// applied yet.
    pub fn has_submitted(&self, tree: TreeId) -> bool {
        self.engine.has_submitted(tree)
    }

    /// Epochs the committer half has landed on `tree`.
    pub fn committed_generation(&self, tree: TreeId) -> u64 {
        self.generations[tree.index() as usize]
    }

    /// Per-epoch `(staged, canceled)` counters of one shard's strategy —
    /// the adaptive batch-sizing signal. Counters describe the shard's
    /// open or most recently committed epoch, so a fleet-level tuner
    /// should sum only over the shards the epoch in question touched
    /// (an untouched shard still reports an older epoch's counters).
    pub fn batch_cancellation(&self, tree: TreeId) -> Option<(u64, u64)> {
        self.engine.batch_cancellation(tree)
    }

    /// Test oracle: every shard's strategy against a from-scratch
    /// rebuild of its tree.
    pub fn check_strategy_consistent(&self) -> Result<(), String> {
        for (t, index) in self.tree_ids().zip(&self.indexes) {
            self.engine
                .shard(t)
                .check_consistent(index.ast())
                .map_err(|e| format!("{t:?}: {e}"))?;
        }
        Ok(())
    }

    /// Test oracle: per shard and rule, match existence agrees with a
    /// fresh naive scan.
    pub fn agreement_with_naive(&mut self) -> Result<(), String> {
        for ti in 0..self.indexes.len() {
            let tree = TreeId::from_index(ti as u32);
            for (rid, rule) in self.rules.clone().iter() {
                let ast = self.indexes[ti].ast();
                let naive = tt_pattern::find_first(ast, ast.root(), &rule.pattern).is_some();
                let mine = self
                    .engine
                    .find_one(tree, self.indexes[ti].ast(), rid)
                    .is_some();
                if naive != mine {
                    return Err(format!(
                        "{tree:?}: strategy {} disagrees on rule {rid} ({}): \
                         naive={naive}, strategy={mine}",
                        self.kind.label(),
                        rule.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// Strategy-held supplemental memory across the fleet.
    pub fn strategy_memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }

    /// The fleet's own AST memory (baseline shared by all strategies).
    pub fn ast_memory_bytes(&self) -> usize {
        self.indexes.iter().map(|i| i.ast().memory_bytes()).sum()
    }

    /// Maintained views across the fleet: one per (shard, rule) — the
    /// denominator of the multi-tree bench's per-view scaling metric.
    pub fn maintained_views(&self) -> usize {
        self.indexes.len() * self.rules.len()
    }

    /// Structural sanity of every shard's index.
    pub fn check_structure(&self) -> Result<(), String> {
        for (t, index) in self.tree_ids().zip(&self.indexes) {
            index.check_structure().map_err(|e| format!("{t:?}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Jitd;
    use tt_ycsb::{FleetSpec, FleetWorkload};

    fn records(n: i64, salt: i64) -> Vec<Record> {
        (0..n).map(|k| Record::new(k, k * 3 + salt)).collect()
    }

    #[test]
    fn fleet_routes_ops_and_reorganizes_per_tree() {
        let mut fleet = JitdFleet::new(
            StrategyKind::TreeToaster,
            RuleConfig { crack_threshold: 8 },
            3,
            |t| records(64, t as i64),
        );
        assert_eq!(fleet.tree_count(), 3);
        let ids: Vec<TreeId> = fleet.tree_ids().collect();
        // Preload values differ per shard; reads route to the right one.
        assert_eq!(fleet.index_of(ids[0]).get(5), Some(15));
        assert_eq!(fleet.index_of(ids[2]).get(5), Some(17));
        for &t in &ids {
            fleet.reorganize_until_quiet(t, u64::MAX);
        }
        assert!(fleet.stats.steps > 0);
        fleet.check_structure().unwrap();
        fleet.check_strategy_consistent().unwrap();
        // A write to shard 1 only dirties shard 1.
        fleet.execute(ids[1], &Op::Insert { key: 999, value: 1 });
        assert_eq!(fleet.index_of(ids[1]).get(999), Some(1));
        assert_eq!(fleet.index_of(ids[0]).get(999), None);
        fleet.agreement_with_naive().unwrap();
        assert_eq!(fleet.maintained_views(), 3 * fleet.rules().len());
    }

    #[test]
    fn per_tree_epochs_commit_independently() {
        for kind in StrategyKind::all() {
            let mut fleet = JitdFleet::new(kind, RuleConfig { crack_threshold: 8 }, 2, |t| {
                records(48, t as i64)
            });
            let ids: Vec<TreeId> = fleet.tree_ids().collect();
            for &t in &ids {
                fleet.reorganize_until_quiet(t, u64::MAX);
            }
            // Open epochs on both shards, dirty both, commit only one.
            fleet.begin_batch(ids[0]);
            fleet.begin_batch(ids[1]);
            for &t in &ids {
                fleet.execute(t, &Op::Update { key: 3, value: 7 });
                fleet.reorganize_until_quiet(t, u64::MAX);
            }
            fleet.commit_batch(ids[0]);
            // Shard 0 is clean and checkable; shard 1 may still hold an
            // open dirty epoch (strategy-dependent), and committing it
            // must restore full-fleet consistency.
            fleet
                .engine()
                .shard(ids[0])
                .check_consistent(fleet.index_of(ids[0]).ast())
                .unwrap_or_else(|e| panic!("{} shard 0: {e}", kind.label()));
            fleet.commit_batch(ids[1]);
            fleet
                .check_strategy_consistent()
                .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            fleet.agreement_with_naive().unwrap();
            fleet.check_structure().unwrap();
        }
    }

    /// Sealing an epoch and applying it from the pending-commit queue
    /// must land the fleet in the same state as an inline commit, for
    /// every strategy (the deterministic spot check; the
    /// commit-equivalence proptest broadens it to random interleavings).
    #[test]
    fn submitted_commits_equal_inline_commits() {
        for kind in StrategyKind::all() {
            let build = || {
                JitdFleet::new(kind, RuleConfig { crack_threshold: 8 }, 2, |t| {
                    records(48, t as i64)
                })
            };
            let mut piped = build();
            let mut inline = build();
            let ids: Vec<TreeId> = piped.tree_ids().collect();
            for round in 0..4 {
                for &t in &ids {
                    piped.begin_batch(t);
                    inline.begin_batch(t);
                }
                for &t in &ids {
                    let key = 100 + round;
                    piped.execute(t, &Op::Insert { key, value: round });
                    inline.execute(t, &Op::Insert { key, value: round });
                    piped.reorganize_until_quiet(t, u64::MAX);
                    inline.reorganize_until_quiet(t, u64::MAX);
                }
                for &t in &ids {
                    piped.submit_commit(t);
                    inline.commit_batch(t);
                }
                // Sealed epochs stay visible to the owning session: the
                // two fleets must agree even before the deferred apply.
                for &t in &ids {
                    for key in 0..110 {
                        assert_eq!(
                            piped.index_of(t).get(key),
                            inline.index_of(t).get(key),
                            "{} {t:?} diverged at key {key} pre-apply",
                            kind.label()
                        );
                    }
                }
                let pending = piped.commits_pending();
                assert_eq!(piped.drain_commits(), pending);
            }
            assert_eq!(piped.commits_pending(), 0);
            for &t in &ids {
                assert!(!piped.has_submitted(t));
            }
            piped
                .check_strategy_consistent()
                .unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            piped.agreement_with_naive().unwrap();
            // Deferred and inline paths produce identical structures.
            for &t in &ids {
                assert_eq!(
                    tt_ast::sexpr::to_sexpr(
                        piped.index_of(t).ast(),
                        piped.index_of(t).ast().root()
                    ),
                    tt_ast::sexpr::to_sexpr(
                        inline.index_of(t).ast(),
                        inline.index_of(t).ast().root()
                    ),
                    "{} {t:?} structural divergence",
                    kind.label()
                );
            }
        }
    }

    /// The heat scheduler: writes enqueue shards, the hottest pending
    /// shard is served first, and out-of-arrival-order service is
    /// counted as a steal.
    #[test]
    fn heat_scheduler_serves_hottest_first() {
        let mut fleet = JitdFleet::new(
            StrategyKind::TreeToaster,
            RuleConfig { crack_threshold: 8 },
            3,
            |t| records(48, t as i64),
        );
        let ids: Vec<TreeId> = fleet.tree_ids().collect();
        for &t in &ids {
            fleet.reorganize_until_quiet(t, u64::MAX);
        }
        assert_eq!(fleet.pending_shards(), 0);
        // One write on tree 0 (arrives first), three on tree 2.
        fleet.execute(ids[0], &Op::Insert { key: 900, value: 1 });
        for k in 0..3 {
            fleet.execute(
                ids[2],
                &Op::Insert {
                    key: 901 + k,
                    value: 1,
                },
            );
        }
        assert_eq!(fleet.pending_shards(), 2);
        assert_eq!(fleet.heat_of(ids[2]), 3);
        // Tree 2 is hotter: served first despite arriving second.
        let (served, steps) = fleet.reorganize_next(u64::MAX).unwrap();
        assert_eq!(served, ids[2]);
        assert!(steps > 0);
        assert_eq!(fleet.heat_of(ids[2]), 0);
        assert_eq!(fleet.stats.steal_count, 1, "bypassed FIFO order");
        // The rest drains in order; an empty queue yields None.
        assert_eq!(fleet.reorganize_next(u64::MAX).unwrap().0, ids[0]);
        assert_eq!(fleet.reorganize_next(u64::MAX), None);
        assert_eq!(fleet.reorganize_pending(u64::MAX), 0);
        fleet.check_strategy_consistent().unwrap();
        fleet.agreement_with_naive().unwrap();
    }

    /// A step-capped drain must leave the cut-off shard scheduled, not
    /// strand its backlog.
    #[test]
    fn capped_drain_requeues_unfinished_shard() {
        let mut fleet = JitdFleet::new(
            StrategyKind::TreeToaster,
            RuleConfig { crack_threshold: 8 },
            2,
            |t| records(64, t as i64),
        );
        let ids: Vec<TreeId> = fleet.tree_ids().collect();
        // Don't pre-crack: tree 0 holds a deep backlog, then gets dirtied.
        fleet.execute(ids[0], &Op::Insert { key: 900, value: 1 });
        assert_eq!(fleet.pending_shards(), 1);
        let (served, steps) = fleet.reorganize_next(1).unwrap();
        assert_eq!(served, ids[0]);
        // One round may fire several rules, so the cap is a floor on
        // where the drain stops, not an exact count.
        assert!(steps >= 1, "cap stopped the drain early");
        assert_eq!(
            fleet.pending_shards(),
            1,
            "cut-off shard must stay scheduled"
        );
        // Draining in capped chunks still reaches quiescence.
        let applied = fleet.reorganize_pending(4);
        assert!(applied > 0);
        assert_eq!(fleet.pending_shards(), 0);
        assert_eq!(fleet.reorganize_until_quiet(ids[0], u64::MAX), 0);
        fleet.check_strategy_consistent().unwrap();
    }

    /// A heat threshold above 1 keeps cold shards out of the queue.
    #[test]
    fn heat_threshold_gates_scheduling() {
        let mut fleet = JitdFleet::new(
            StrategyKind::TreeToaster,
            RuleConfig { crack_threshold: 8 },
            2,
            |t| records(32, t as i64),
        );
        fleet.set_heat_threshold(3);
        let ids: Vec<TreeId> = fleet.tree_ids().collect();
        fleet.execute(ids[0], &Op::Update { key: 1, value: 9 });
        fleet.execute(ids[0], &Op::Update { key: 2, value: 9 });
        assert_eq!(fleet.pending_shards(), 0, "two writes stay below 3");
        fleet.delete(ids[0], 3);
        assert_eq!(fleet.pending_shards(), 1, "third write crosses");
        // Reads never heat a shard.
        fleet.execute(ids[1], &Op::Read { key: 1 });
        assert_eq!(fleet.heat_of(ids[1]), 0);
        fleet.reorganize_pending(u64::MAX);
        fleet.check_structure().unwrap();
    }

    /// The fleet must behave exactly like independent single-tree
    /// runtimes fed the same per-tree streams (the deterministic spot
    /// check; the proptest suite broadens this to random interleavings).
    #[test]
    fn fleet_equals_independent_runtimes() {
        let trees = 2usize;
        let mut fleet = JitdFleet::new(
            StrategyKind::TreeToaster,
            RuleConfig { crack_threshold: 8 },
            trees,
            |t| records(64, t as i64),
        );
        let mut solos: Vec<Jitd> = (0..trees)
            .map(|t| {
                Jitd::new(
                    StrategyKind::TreeToaster,
                    RuleConfig { crack_threshold: 8 },
                    records(64, t as i64),
                )
            })
            .collect();
        let mut fleet_driver = FleetWorkload::new(FleetSpec::standard('H', trees), 64, 11);
        // Interleaved fleet stream, recorded per tree for the solo replay.
        let mut per_tree: Vec<Vec<Op>> = vec![Vec::new(); trees];
        for _ in 0..60 {
            let fop = fleet_driver.next_op();
            let t = TreeId::from_index(fop.tree as u32);
            fleet.execute(t, &fop.op);
            fleet.reorganize_round(t);
            per_tree[fop.tree].push(fop.op);
        }
        for (solo, ops) in solos.iter_mut().zip(&per_tree) {
            for op in ops {
                solo.execute(op);
                solo.reorganize_round();
            }
        }
        for (t, solo) in solos.iter().enumerate() {
            let tree = TreeId::from_index(t as u32);
            for key in 0..80 {
                assert_eq!(
                    fleet.index_of(tree).get(key),
                    solo.index().get(key),
                    "tree {t} diverged at key {key}"
                );
            }
            // Same rewrites applied shard-by-shard ⇒ same structure.
            assert_eq!(
                tt_ast::sexpr::to_sexpr(
                    fleet.index_of(tree).ast(),
                    fleet.index_of(tree).ast().root()
                ),
                tt_ast::sexpr::to_sexpr(solo.index().ast(), solo.index().ast().root()),
                "tree {t} structural divergence"
            );
        }
    }
}
