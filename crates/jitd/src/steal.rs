//! The shared work queue behind the work-stealing reorganizer pool.
//!
//! PR 4 gave every shard a dedicated background worker
//! ([`AsyncJitd`](crate::AsyncJitd)): simple, but wasteful exactly when
//! it matters — under skew (fleet workload I: 20% of the trees take 80%
//! of the churn) the cold shards' workers spin uselessly while the hot
//! shards' backlogs are each stuck behind a single thread. This module
//! replaces the one-worker-per-shard model with a **shared queue of
//! shard-granularity work items** drained by a configurable pool:
//!
//! - **Enqueue on heat.** Operations that dirty a shard bump its heat
//!   counter ([`WorkQueue::note_heat`]); when the counter crosses the
//!   configured threshold the shard is enqueued — at most once
//!   (an `in_queue` flag per shard), so the queue length is bounded by
//!   the shard count no matter how hot a shard runs.
//! - **Claim by try-lock.** A worker pops a shard and *tries* its
//!   `parking_lot` mutex. On contention — the operation path or another
//!   worker holds it — the item is requeued and the worker moves on
//!   ([`WorkQueue::requeue_contended`]), so a stalled shard can never
//!   head-of-line-block the pool.
//! - **Short critical sections.** A claim performs one reorganization
//!   round and releases; if the round fired, the shard is requeued.
//!   Operations therefore interleave with reorganization at the same
//!   granularity as the dedicated-worker model.
//!
//! The queue also keeps the pool's ledger: [`StealStats::steal_count`]
//! (items drained by a worker other than the shard's home worker,
//! `shard mod workers`) and [`StealStats::contended_count`] (try-lock
//! misses). Those counters surface through
//! [`JitdStats`](crate::JitdStats) into the `tt-bench` JSON cells.
//!
//! Everything here is shard-*id* bookkeeping — the queue never touches a
//! runtime. [`AsyncJitd::spawn_stealing`](crate::AsyncJitd::spawn_stealing)
//! wires it to real workers, and the single-threaded
//! [`JitdFleet`](crate::JitdFleet) scheduler reuses the same policy
//! without the atomics.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Tuning knobs of a work-stealing reorganizer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealConfig {
    /// Worker threads draining the shared queue. The interesting regime
    /// is `workers < shards` — fewer threads than the dedicated model,
    /// yet hot shards get serviced by *any* free worker.
    pub workers: usize,
    /// Dirtying operations a shard absorbs before it is enqueued. 1
    /// enqueues on every write (the dedicated model's eagerness);
    /// larger values let cold shards ride along unqueued.
    pub heat_threshold: u64,
}

impl Default for StealConfig {
    fn default() -> StealConfig {
        StealConfig {
            workers: 2,
            heat_threshold: 1,
        }
    }
}

/// Counters describing a pool's scheduling behavior (monotonic;
/// snapshot via [`WorkQueue::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Work items drained by a worker that was not the shard's *home*
    /// worker (`shard mod workers`) — the steals that give the pool its
    /// name. Zero under a dedicated-worker deployment by definition.
    pub steal_count: u64,
    /// Claims that failed because the shard's mutex was held (by the
    /// operation path or a peer) and the item was requeued instead of
    /// waiting.
    pub contended_count: u64,
    /// Work items drained (claims that did acquire the shard lock).
    pub drained_count: u64,
    /// Times a consumer parked on the queue's condvar
    /// ([`WorkQueue::pop_blocking`] with nothing to pop).
    pub parked_count: u64,
    /// Times a parked consumer was woken by a notification rather than
    /// its heartbeat timeout.
    pub woken_count: u64,
    /// `yield_now` calls consumers reported via
    /// [`WorkQueue::note_spin_yield`]. With condvar parking this stays 0
    /// at steady idle — the counter exists to prove the spin path is
    /// gone.
    pub spin_yield_count: u64,
}

/// A bounded multi-producer/multi-consumer queue of shard indexes with
/// per-shard dedup, heat accounting, and steal/contention counters.
///
/// The queue is deliberately FIFO: heat *admits* a shard (threshold),
/// arrival order schedules it. Priority ordering lives where it is
/// cheap — the single-threaded fleet scheduler and the forest engine's
/// `find_anywhere` probe order — while the threaded pool keeps its
/// critical section to a push/pop.
#[derive(Debug)]
pub struct WorkQueue {
    queue: Mutex<VecDeque<usize>>,
    /// Parks idle consumers; notified (under the queue lock) whenever an
    /// item is pushed, so no enqueue can slip between a consumer's empty
    /// check and its park.
    available: Condvar,
    /// One flag per shard: true while the shard sits in `queue`.
    in_queue: Vec<AtomicBool>,
    /// Dirtying ops since the shard was last drained.
    heat: Vec<AtomicU64>,
    threshold: u64,
    steals: AtomicU64,
    contended: AtomicU64,
    drained: AtomicU64,
    parked: AtomicU64,
    woken: AtomicU64,
    spin_yields: AtomicU64,
}

impl WorkQueue {
    /// An empty queue over `shards` shards.
    pub fn new(shards: usize, threshold: u64) -> WorkQueue {
        WorkQueue {
            queue: Mutex::new(VecDeque::with_capacity(shards)),
            available: Condvar::new(),
            in_queue: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            heat: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            threshold: threshold.max(1),
            steals: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            parked: AtomicU64::new(0),
            woken: AtomicU64::new(0),
            spin_yields: AtomicU64::new(0),
        }
    }

    /// Number of shards this queue schedules.
    pub fn shard_count(&self) -> usize {
        self.in_queue.len()
    }

    /// Records one dirtying operation against `shard`; enqueues it once
    /// its accumulated heat crosses the threshold.
    pub fn note_heat(&self, shard: usize) {
        let heat = self.heat[shard].fetch_add(1, Ordering::AcqRel) + 1;
        if heat >= self.threshold {
            self.enqueue(shard);
        }
    }

    /// Enqueues `shard` unless it is already queued (dedup via the
    /// per-shard flag, so re-enqueueing a hot shard is idempotent).
    /// The flag transition happens under the queue lock, so the flag
    /// always agrees with queue membership — an enqueue racing a
    /// [`pop`](WorkQueue::pop) either lands before it (and is popped)
    /// or after the flag cleared (and pushes a fresh item); no wakeup
    /// is ever lost.
    pub fn enqueue(&self, shard: usize) {
        let mut queue = self.queue.lock();
        if !self.in_queue[shard].swap(true, Ordering::AcqRel) {
            queue.push_back(shard);
            // Notified while the lock is held: a consumer is either
            // already inside `pop_blocking` holding the lock (it will
            // see the item on its recheck) or parked (it receives this).
            self.available.notify_one();
        }
    }

    /// Enqueues every shard (the initial backlog: freshly loaded arrays
    /// all want cracking).
    pub fn enqueue_all(&self) {
        for shard in 0..self.in_queue.len() {
            self.enqueue(shard);
        }
    }

    /// Pops the next work item, clearing its queued flag and heat under
    /// the queue lock *before* handing it out — churn arriving while
    /// the item is being processed re-enqueues it rather than being
    /// lost. (Heat increments that race the clear itself may be wiped,
    /// but their shard is exactly the one the popping worker is about
    /// to service, so the work is folded into that round; the producer's
    /// enqueue still lands through the now-consistent flag.)
    pub fn pop(&self) -> Option<usize> {
        let mut queue = self.queue.lock();
        let shard = queue.pop_front()?;
        self.in_queue[shard].store(false, Ordering::Release);
        self.heat[shard].store(0, Ordering::Release);
        Some(shard)
    }

    /// [`pop`](WorkQueue::pop) that **parks** on the queue's condvar when
    /// nothing is available, instead of returning `None` for the caller
    /// to spin on. Returns `None` only once `stopping` reads true with
    /// the queue empty (callers set their stop flag and then call
    /// [`wake_all`](WorkQueue::wake_all)). The `timeout` is a heartbeat,
    /// not a correctness mechanism — the enqueue/park handshake loses no
    /// wakeups — but it bounds the damage of any future protocol bug and
    /// lets workers re-read `stopping` on a slow clock.
    pub fn pop_blocking(&self, stopping: impl Fn() -> bool, timeout: Duration) -> Option<usize> {
        // Bounded spin before the first park of an idle episode: a
        // consumer that drained the queue moments before the next burst
        // lands picks the new item up at yield latency instead of
        // charging a condvar wake to the producer's critical path.
        // Genuinely idle consumers exhaust the budget once and park;
        // spurious or heartbeat wakes re-park without a fresh spin.
        const SPIN_ROUNDS: usize = 128;
        let mut spins = 0usize;
        let mut queue = self.queue.lock();
        loop {
            if let Some(shard) = queue.pop_front() {
                self.in_queue[shard].store(false, Ordering::Release);
                self.heat[shard].store(0, Ordering::Release);
                return Some(shard);
            }
            if stopping() {
                return None;
            }
            if spins < SPIN_ROUNDS {
                spins += 1;
                drop(queue);
                std::thread::yield_now();
                queue = self.queue.lock();
                continue;
            }
            self.parked.fetch_add(1, Ordering::Relaxed);
            let (reacquired, timed_out) = self.available.wait_timeout(queue, timeout);
            queue = reacquired;
            if !timed_out {
                self.woken.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Wakes every parked consumer (the shutdown broadcast — call after
    /// publishing the stop flag `pop_blocking`'s callers check).
    pub fn wake_all(&self) {
        // Taking the queue lock orders the broadcast after any in-flight
        // park: a consumer between its empty-check and its wait still
        // holds the lock, so the notification cannot land in that gap.
        let _queue = self.queue.lock();
        self.available.notify_all();
    }

    /// Records one idle/contended `yield_now` a consumer performed (the
    /// spin path parking is meant to eliminate; see
    /// [`StealStats::spin_yield_count`]).
    pub fn note_spin_yield(&self) {
        self.spin_yields.fetch_add(1, Ordering::Relaxed);
    }

    /// Records that `worker` successfully claimed `shard`, counting it
    /// as a steal when the worker is not the shard's home worker.
    pub fn record_drain(&self, worker: usize, shard: usize, workers: usize) {
        self.drained.fetch_add(1, Ordering::Relaxed);
        if workers > 0 && shard % workers != worker {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Returns `shard` to the queue after a failed try-lock claim,
    /// counting the contention. The pop/requeue pair is what keeps a
    /// stalled shard from blocking the pool.
    pub fn requeue_contended(&self, shard: usize) {
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.enqueue(shard);
    }

    /// Pending work items.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// True when no work is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Current heat of one shard (dirtying ops since last drain).
    pub fn heat_of(&self, shard: usize) -> u64 {
        self.heat[shard].load(Ordering::Acquire)
    }

    /// Snapshot of the scheduling counters.
    pub fn stats(&self) -> StealStats {
        StealStats {
            steal_count: self.steals.load(Ordering::Relaxed),
            contended_count: self.contended.load(Ordering::Relaxed),
            drained_count: self.drained.load(Ordering::Relaxed),
            parked_count: self.parked.load(Ordering::Relaxed),
            woken_count: self.woken.load(Ordering::Relaxed),
            spin_yield_count: self.spin_yields.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn enqueue_is_deduplicated() {
        let q = WorkQueue::new(4, 1);
        q.enqueue(2);
        q.enqueue(2);
        q.enqueue(1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(2));
        // Popped items can be re-enqueued.
        q.enqueue(2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn heat_threshold_gates_admission() {
        let q = WorkQueue::new(2, 3);
        q.note_heat(0);
        q.note_heat(0);
        assert!(q.is_empty(), "below threshold: not queued");
        assert_eq!(q.heat_of(0), 2);
        q.note_heat(0);
        assert_eq!(q.len(), 1, "third write crosses the threshold");
        // Draining resets the heat.
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.heat_of(0), 0);
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let q = WorkQueue::new(1, 0);
        q.note_heat(0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn steal_and_contention_accounting() {
        let q = WorkQueue::new(6, 1);
        // Shard 4's home worker in a 2-worker pool is 0; worker 1
        // draining it is a steal, worker 0 draining it is not.
        q.record_drain(1, 4, 2);
        q.record_drain(0, 4, 2);
        q.record_drain(1, 5, 2);
        let s = q.stats();
        assert_eq!(s.steal_count, 1);
        assert_eq!(s.drained_count, 3);
        assert_eq!(s.contended_count, 0);
        q.requeue_contended(4);
        assert_eq!(q.stats().contended_count, 1);
        assert_eq!(q.pop(), Some(4), "contended item went back on queue");
    }

    #[test]
    fn enqueue_all_seeds_the_initial_backlog() {
        let q = WorkQueue::new(3, 1);
        q.enqueue_all();
        assert_eq!(q.len(), 3);
        assert_eq!((q.pop(), q.pop(), q.pop()), (Some(0), Some(1), Some(2)));
    }

    #[test]
    fn pop_blocking_parks_until_enqueue() {
        let q = Arc::new(WorkQueue::new(2, 1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_blocking(|| false, std::time::Duration::from_secs(30)))
        };
        // Give the consumer a moment to reach the park (not required for
        // correctness — an enqueue before the park is seen on the first
        // empty-check — just to usually exercise the parked path).
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.enqueue(1);
        assert_eq!(consumer.join().unwrap(), Some(1));
        let s = q.stats();
        assert_eq!(s.spin_yield_count, 0, "parking replaced spinning");
    }

    #[test]
    fn pop_blocking_returns_none_on_stop() {
        let q = Arc::new(WorkQueue::new(2, 1));
        let stop = Arc::new(AtomicBool::new(false));
        let consumer = {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                q.pop_blocking(
                    || stop.load(Ordering::Acquire),
                    std::time::Duration::from_secs(30),
                )
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        // Publish the stop flag first, then broadcast — the shutdown
        // protocol every pool uses.
        stop.store(true, Ordering::Release);
        q.wake_all();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn pop_blocking_heartbeat_rechecks_stop_without_notification() {
        // No wake_all at all: the heartbeat timeout alone must let a
        // parked consumer observe a stop flag raised behind its back.
        let q = Arc::new(WorkQueue::new(1, 1));
        let stop = Arc::new(AtomicBool::new(false));
        let consumer = {
            let q = Arc::clone(&q);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                q.pop_blocking(
                    || stop.load(Ordering::Acquire),
                    std::time::Duration::from_millis(5),
                )
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        stop.store(true, Ordering::Release);
        assert_eq!(consumer.join().unwrap(), None);
        assert!(q.stats().parked_count > 0, "the consumer actually parked");
    }

    #[test]
    fn concurrent_producers_and_consumers_neither_lose_nor_duplicate() {
        let q = Arc::new(WorkQueue::new(8, 1));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..800 {
                        q.note_heat(i % 8);
                    }
                })
            })
            .collect();
        let drained = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicBool::new(false));
        let consumers: Vec<_> = (0..2)
            .map(|w| {
                let q = Arc::clone(&q);
                let drained = Arc::clone(&drained);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    // Consume until the producers finish and the queue
                    // is observed empty afterwards.
                    loop {
                        match q.pop() {
                            Some(shard) => {
                                q.record_drain(w, shard, 2);
                                drained.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        done.store(true, Ordering::Release);
        for c in consumers {
            c.join().unwrap();
        }
        assert!(q.is_empty());
        let total = drained.load(Ordering::Relaxed);
        // Dedup bounds the drains; every shard was drained at least once.
        assert!(total >= 8, "every shard surfaced at least once: {total}");
        assert_eq!(q.stats().drained_count, total);
    }
}
