//! The shared work queue behind the work-stealing reorganizer pool.
//!
//! PR 4 gave every shard a dedicated background worker
//! ([`AsyncJitd`](crate::AsyncJitd)): simple, but wasteful exactly when
//! it matters — under skew (fleet workload I: 20% of the trees take 80%
//! of the churn) the cold shards' workers spin uselessly while the hot
//! shards' backlogs are each stuck behind a single thread. This module
//! replaces the one-worker-per-shard model with a **shared queue of
//! shard-granularity work items** drained by a configurable pool:
//!
//! - **Enqueue on heat.** Operations that dirty a shard bump its heat
//!   counter ([`WorkQueue::note_heat`]); when the counter crosses the
//!   configured threshold the shard is enqueued — at most once
//!   (an `in_queue` flag per shard), so the queue length is bounded by
//!   the shard count no matter how hot a shard runs.
//! - **Claim by try-lock.** A worker pops a shard and *tries* its
//!   `parking_lot` mutex. On contention — the operation path or another
//!   worker holds it — the item is requeued and the worker moves on
//!   ([`WorkQueue::requeue_contended`]), so a stalled shard can never
//!   head-of-line-block the pool.
//! - **Short critical sections.** A claim performs one reorganization
//!   round and releases; if the round fired, the shard is requeued.
//!   Operations therefore interleave with reorganization at the same
//!   granularity as the dedicated-worker model.
//!
//! The queue also keeps the pool's ledger: [`StealStats::steal_count`]
//! (items drained by a worker other than the shard's home worker,
//! `shard mod workers`) and [`StealStats::contended_count`] (try-lock
//! misses). Those counters surface through
//! [`JitdStats`](crate::JitdStats) into the `tt-bench` JSON cells.
//!
//! Everything here is shard-*id* bookkeeping — the queue never touches a
//! runtime. [`AsyncJitd::spawn_stealing`](crate::AsyncJitd::spawn_stealing)
//! wires it to real workers, and the single-threaded
//! [`JitdFleet`](crate::JitdFleet) scheduler reuses the same policy
//! without the atomics.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Tuning knobs of a work-stealing reorganizer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealConfig {
    /// Worker threads draining the shared queue. The interesting regime
    /// is `workers < shards` — fewer threads than the dedicated model,
    /// yet hot shards get serviced by *any* free worker.
    pub workers: usize,
    /// Dirtying operations a shard absorbs before it is enqueued. 1
    /// enqueues on every write (the dedicated model's eagerness);
    /// larger values let cold shards ride along unqueued.
    pub heat_threshold: u64,
}

impl Default for StealConfig {
    fn default() -> StealConfig {
        StealConfig {
            workers: 2,
            heat_threshold: 1,
        }
    }
}

/// Counters describing a pool's scheduling behavior (monotonic;
/// snapshot via [`WorkQueue::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Work items drained by a worker that was not the shard's *home*
    /// worker (`shard mod workers`) — the steals that give the pool its
    /// name. Zero under a dedicated-worker deployment by definition.
    pub steal_count: u64,
    /// Claims that failed because the shard's mutex was held (by the
    /// operation path or a peer) and the item was requeued instead of
    /// waiting.
    pub contended_count: u64,
    /// Work items drained (claims that did acquire the shard lock).
    pub drained_count: u64,
}

/// A bounded multi-producer/multi-consumer queue of shard indexes with
/// per-shard dedup, heat accounting, and steal/contention counters.
///
/// The queue is deliberately FIFO: heat *admits* a shard (threshold),
/// arrival order schedules it. Priority ordering lives where it is
/// cheap — the single-threaded fleet scheduler and the forest engine's
/// `find_anywhere` probe order — while the threaded pool keeps its
/// critical section to a push/pop.
#[derive(Debug)]
pub struct WorkQueue {
    queue: Mutex<VecDeque<usize>>,
    /// One flag per shard: true while the shard sits in `queue`.
    in_queue: Vec<AtomicBool>,
    /// Dirtying ops since the shard was last drained.
    heat: Vec<AtomicU64>,
    threshold: u64,
    steals: AtomicU64,
    contended: AtomicU64,
    drained: AtomicU64,
}

impl WorkQueue {
    /// An empty queue over `shards` shards.
    pub fn new(shards: usize, threshold: u64) -> WorkQueue {
        WorkQueue {
            queue: Mutex::new(VecDeque::with_capacity(shards)),
            in_queue: (0..shards).map(|_| AtomicBool::new(false)).collect(),
            heat: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            threshold: threshold.max(1),
            steals: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Number of shards this queue schedules.
    pub fn shard_count(&self) -> usize {
        self.in_queue.len()
    }

    /// Records one dirtying operation against `shard`; enqueues it once
    /// its accumulated heat crosses the threshold.
    pub fn note_heat(&self, shard: usize) {
        let heat = self.heat[shard].fetch_add(1, Ordering::AcqRel) + 1;
        if heat >= self.threshold {
            self.enqueue(shard);
        }
    }

    /// Enqueues `shard` unless it is already queued (dedup via the
    /// per-shard flag, so re-enqueueing a hot shard is idempotent).
    /// The flag transition happens under the queue lock, so the flag
    /// always agrees with queue membership — an enqueue racing a
    /// [`pop`](WorkQueue::pop) either lands before it (and is popped)
    /// or after the flag cleared (and pushes a fresh item); no wakeup
    /// is ever lost.
    pub fn enqueue(&self, shard: usize) {
        let mut queue = self.queue.lock();
        if !self.in_queue[shard].swap(true, Ordering::AcqRel) {
            queue.push_back(shard);
        }
    }

    /// Enqueues every shard (the initial backlog: freshly loaded arrays
    /// all want cracking).
    pub fn enqueue_all(&self) {
        for shard in 0..self.in_queue.len() {
            self.enqueue(shard);
        }
    }

    /// Pops the next work item, clearing its queued flag and heat under
    /// the queue lock *before* handing it out — churn arriving while
    /// the item is being processed re-enqueues it rather than being
    /// lost. (Heat increments that race the clear itself may be wiped,
    /// but their shard is exactly the one the popping worker is about
    /// to service, so the work is folded into that round; the producer's
    /// enqueue still lands through the now-consistent flag.)
    pub fn pop(&self) -> Option<usize> {
        let mut queue = self.queue.lock();
        let shard = queue.pop_front()?;
        self.in_queue[shard].store(false, Ordering::Release);
        self.heat[shard].store(0, Ordering::Release);
        Some(shard)
    }

    /// Records that `worker` successfully claimed `shard`, counting it
    /// as a steal when the worker is not the shard's home worker.
    pub fn record_drain(&self, worker: usize, shard: usize, workers: usize) {
        self.drained.fetch_add(1, Ordering::Relaxed);
        if workers > 0 && shard % workers != worker {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Returns `shard` to the queue after a failed try-lock claim,
    /// counting the contention. The pop/requeue pair is what keeps a
    /// stalled shard from blocking the pool.
    pub fn requeue_contended(&self, shard: usize) {
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.enqueue(shard);
    }

    /// Pending work items.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// True when no work is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Current heat of one shard (dirtying ops since last drain).
    pub fn heat_of(&self, shard: usize) -> u64 {
        self.heat[shard].load(Ordering::Acquire)
    }

    /// Snapshot of the scheduling counters.
    pub fn stats(&self) -> StealStats {
        StealStats {
            steal_count: self.steals.load(Ordering::Relaxed),
            contended_count: self.contended.load(Ordering::Relaxed),
            drained_count: self.drained.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn enqueue_is_deduplicated() {
        let q = WorkQueue::new(4, 1);
        q.enqueue(2);
        q.enqueue(2);
        q.enqueue(1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(2));
        // Popped items can be re-enqueued.
        q.enqueue(2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn heat_threshold_gates_admission() {
        let q = WorkQueue::new(2, 3);
        q.note_heat(0);
        q.note_heat(0);
        assert!(q.is_empty(), "below threshold: not queued");
        assert_eq!(q.heat_of(0), 2);
        q.note_heat(0);
        assert_eq!(q.len(), 1, "third write crosses the threshold");
        // Draining resets the heat.
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.heat_of(0), 0);
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let q = WorkQueue::new(1, 0);
        q.note_heat(0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn steal_and_contention_accounting() {
        let q = WorkQueue::new(6, 1);
        // Shard 4's home worker in a 2-worker pool is 0; worker 1
        // draining it is a steal, worker 0 draining it is not.
        q.record_drain(1, 4, 2);
        q.record_drain(0, 4, 2);
        q.record_drain(1, 5, 2);
        let s = q.stats();
        assert_eq!(s.steal_count, 1);
        assert_eq!(s.drained_count, 3);
        assert_eq!(s.contended_count, 0);
        q.requeue_contended(4);
        assert_eq!(q.stats().contended_count, 1);
        assert_eq!(q.pop(), Some(4), "contended item went back on queue");
    }

    #[test]
    fn enqueue_all_seeds_the_initial_backlog() {
        let q = WorkQueue::new(3, 1);
        q.enqueue_all();
        assert_eq!(q.len(), 3);
        assert_eq!((q.pop(), q.pop(), q.pop()), (Some(0), Some(1), Some(2)));
    }

    #[test]
    fn concurrent_producers_and_consumers_neither_lose_nor_duplicate() {
        let q = Arc::new(WorkQueue::new(8, 1));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..800 {
                        q.note_heat(i % 8);
                    }
                })
            })
            .collect();
        let drained = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicBool::new(false));
        let consumers: Vec<_> = (0..2)
            .map(|w| {
                let q = Arc::clone(&q);
                let drained = Arc::clone(&drained);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    // Consume until the producers finish and the queue
                    // is observed empty afterwards.
                    loop {
                        match q.pop() {
                            Some(shard) => {
                                q.record_drain(w, shard, 2);
                                drained.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        done.store(true, Ordering::Release);
        for c in consumers {
            c.join().unwrap();
        }
        assert!(q.is_empty());
        let total = drained.load(Ordering::Relaxed);
        // Dedup bounds the drains; every shard was drained at least once.
        assert!(total >= 8, "every shard surfaced at least once: {total}");
        assert_eq!(q.stats().drained_count, total);
    }
}
