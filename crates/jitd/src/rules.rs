//! The JITD rewrite rules (paper §7.1 + appendix B).
//!
//! The five rules of the evaluation "mimic Database Cracking by
//! incrementally building a tree, while pushing updates (Singleton and
//! DeleteSingleton respectively) down into the tree":
//!
//! - **CrackArray** — partition an oversized `Array` around a
//!   pseudo-randomly selected pivot into `BinTree(sep, Array<, Array≥)`.
//! - **PushDownSingletonBtreeLeft/Right** — route a freshly inserted
//!   `Singleton` below a `BinTree` according to the separator.
//! - **PushDownDontDeleteSingletonBtreeLeft/Right** — route a
//!   `DeleteSingleton` tombstone likewise (the paper's figure labels).
//!
//! [`full_rules`] adds the appendix's terminal rules (merging singletons
//! and tombstones into arrays, merging adjacent arrays) so the structure
//! can fully converge; [`pivot_rules`] adds tree rotations (PivotLeft /
//! PivotRight), which are useful for ablations but — having no decreasing
//! measure — must not be driven to a fixpoint.

use std::sync::Arc;
use treetoaster_core::generator::{acompute, acopy, gen, reuse, GenCtx};
use treetoaster_core::{RewriteRule, RuleSet};
use tt_ast::{Record, Schema, Value};
use tt_pattern::dsl as p;
use tt_pattern::Pattern;

/// Tunables for rule construction.
#[derive(Debug, Clone, Copy)]
pub struct RuleConfig {
    /// Arrays strictly larger than this are eligible for cracking.
    pub crack_threshold: usize,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            crack_threshold: 16,
        }
    }
}

/// Mixes the runtime tick into a pseudo-random index (splitmix64 step),
/// keeping pivot selection reproducible run-to-run.
fn mix(tick: u64) -> u64 {
    let mut z = tick.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The pivot CrackArray partitions around: a pseudo-random element of the
/// array, excluding the minimum key (so both partitions are non-empty and
/// cracking always makes progress).
fn crack_pivot(ctx: &GenCtx<'_>, pattern: &Pattern) -> i64 {
    let schema = ctx.ast.schema();
    let a = pattern.var("A").expect("CrackArray binds A");
    let data = ctx
        .ast
        .attr(ctx.bindings.get(a), schema.expect_attr("data"))
        .as_recs();
    debug_assert!(
        data.len() >= 2,
        "threshold ≥ 1 guarantees at least 2 records"
    );
    // Skip index 0 (the minimum in a sorted run): pivot strictly greater
    // than some key means the `< sep` partition is non-empty, and the
    // pivot's own record keeps the `≥ sep` side non-empty.
    let at = 1 + (mix(ctx.tick) as usize) % (data.len() - 1);
    data[at].key
}

fn partition(ctx: &GenCtx<'_>, pattern: &Pattern, keep_lt: bool) -> Arc<Vec<Record>> {
    let schema = ctx.ast.schema();
    let a = pattern.var("A").expect("CrackArray binds A");
    let data = ctx
        .ast
        .attr(ctx.bindings.get(a), schema.expect_attr("data"))
        .as_recs();
    let sep = crack_pivot(ctx, pattern);
    Arc::new(
        data.iter()
            .copied()
            .filter(|r| (r.key < sep) == keep_lt)
            .collect(),
    )
}

/// CrackArray: `Array{size > τ}` →
/// `BinTree(sep, Array{key < sep}, Array{key ≥ sep})`.
fn crack_array(schema: &Arc<Schema>, config: RuleConfig) -> RewriteRule {
    let pattern = Pattern::compile(
        schema,
        p::node(
            "Array",
            "A",
            [],
            p::gt(p::attr("A", "size"), p::int(config.crack_threshold as i64)),
        ),
    );
    let pat_for_sep = pattern.clone();
    let pat_lt = pattern.clone();
    let pat_ge = pattern.clone();
    let pat_lt_size = pattern.clone();
    let pat_ge_size = pattern.clone();
    RewriteRule::new(
        "CrackArray",
        schema,
        pattern.clone(),
        gen(
            "BinTree",
            [(
                "sep",
                acompute("crackPivot", move |ctx| {
                    Value::Int(crack_pivot(ctx, &pat_for_sep))
                }),
            )],
            [
                gen(
                    "Array",
                    [
                        (
                            "data",
                            acompute("lowerRun", move |ctx| {
                                Value::Recs(partition(ctx, &pat_lt, true))
                            }),
                        ),
                        (
                            "size",
                            acompute("lowerLen", move |ctx| {
                                Value::Int(partition(ctx, &pat_lt_size, true).len() as i64)
                            }),
                        ),
                    ],
                    [],
                ),
                gen(
                    "Array",
                    [
                        (
                            "data",
                            acompute("upperRun", move |ctx| {
                                Value::Recs(partition(ctx, &pat_ge, false))
                            }),
                        ),
                        (
                            "size",
                            acompute("upperLen", move |ctx| {
                                Value::Int(partition(ctx, &pat_ge_size, false).len() as i64)
                            }),
                        ),
                    ],
                    [],
                ),
            ],
        ),
    )
}

/// PushDownSingletonBtree{Left,Right}: `Concat(BinTree(q₁,q₂), S)` →
/// route `S` into the matching side (paper §7.1's rule, verbatim).
fn push_down_singleton(schema: &Arc<Schema>, left: bool) -> RewriteRule {
    let side = if left {
        p::lt(p::attr("S", "key"), p::attr("B", "sep"))
    } else {
        p::ge(p::attr("S", "key"), p::attr("B", "sep"))
    };
    let pattern = Pattern::compile(
        schema,
        p::node(
            "Concat",
            "C",
            [
                p::node("BinTree", "B", [p::any_as("q1"), p::any_as("q2")], p::tru()),
                p::node("Singleton", "S", [], p::tru()),
            ],
            side,
        ),
    );
    let generator = if left {
        gen(
            "BinTree",
            [("sep", acopy("B", "sep"))],
            [gen("Concat", [], [reuse("q1"), reuse("S")]), reuse("q2")],
        )
    } else {
        gen(
            "BinTree",
            [("sep", acopy("B", "sep"))],
            [reuse("q1"), gen("Concat", [], [reuse("q2"), reuse("S")])],
        )
    };
    let name = if left {
        "PushDownSingletonBtreeLeft"
    } else {
        "PushDownSingletonBtreeRight"
    };
    RewriteRule::new(name, schema, pattern, generator)
}

/// PushDownDontDeleteSingletonBtree{Left,Right}: route a tombstone below
/// a `BinTree` by separator.
fn push_down_delete(schema: &Arc<Schema>, left: bool) -> RewriteRule {
    let side = if left {
        p::lt(p::attr("D", "key"), p::attr("B", "sep"))
    } else {
        p::ge(p::attr("D", "key"), p::attr("B", "sep"))
    };
    let pattern = Pattern::compile(
        schema,
        p::node(
            "DeleteSingleton",
            "D",
            [p::node(
                "BinTree",
                "B",
                [p::any_as("q1"), p::any_as("q2")],
                p::tru(),
            )],
            side,
        ),
    );
    let generator = if left {
        gen(
            "BinTree",
            [("sep", acopy("B", "sep"))],
            [
                gen(
                    "DeleteSingleton",
                    [("key", acopy("D", "key"))],
                    [reuse("q1")],
                ),
                reuse("q2"),
            ],
        )
    } else {
        gen(
            "BinTree",
            [("sep", acopy("B", "sep"))],
            [
                reuse("q1"),
                gen(
                    "DeleteSingleton",
                    [("key", acopy("D", "key"))],
                    [reuse("q2")],
                ),
            ],
        )
    };
    let name = if left {
        "PushDownDontDeleteSingletonBtreeLeft"
    } else {
        "PushDownDontDeleteSingletonBtreeRight"
    };
    RewriteRule::new(name, schema, pattern, generator)
}

/// The evaluation's five rules, in the order the paper's figures list
/// them (rule ids 0–4).
pub fn paper_rules(schema: &Arc<Schema>, config: RuleConfig) -> RuleSet {
    RuleSet::from_rules(vec![
        crack_array(schema, config),
        push_down_singleton(schema, true),
        push_down_singleton(schema, false),
        push_down_delete(schema, true),
        push_down_delete(schema, false),
    ])
}

fn merged_with_singleton(ctx: &GenCtx<'_>, pattern: &Pattern) -> Vec<Record> {
    let schema = ctx.ast.schema();
    let a = pattern.var("A").expect("binds A");
    let s = pattern.var("S").expect("binds S");
    let data = ctx
        .ast
        .attr(ctx.bindings.get(a), schema.expect_attr("data"))
        .as_recs();
    let key = ctx
        .ast
        .attr(ctx.bindings.get(s), schema.expect_attr("key"))
        .as_int();
    let value = ctx
        .ast
        .attr(ctx.bindings.get(s), schema.expect_attr("value"))
        .as_int();
    let mut out: Vec<Record> = data.as_ref().clone();
    match out.binary_search_by_key(&key, |r| r.key) {
        Ok(at) => out[at].value = value, // newer singleton wins
        Err(at) => out.insert(at, Record::new(key, value)),
    }
    out
}

/// MergeSingletonIntoArray (appendix: "MergeUnSortedConcatArray" family):
/// `Concat(Array, Singleton)` → a single merged `Array`.
fn merge_singleton_into_array(schema: &Arc<Schema>) -> RewriteRule {
    let pattern = Pattern::compile(
        schema,
        p::node(
            "Concat",
            "C",
            [
                p::node("Array", "A", [], p::tru()),
                p::node("Singleton", "S", [], p::tru()),
            ],
            p::tru(),
        ),
    );
    let pat_data = pattern.clone();
    let pat_size = pattern.clone();
    RewriteRule::new(
        "MergeSingletonIntoArray",
        schema,
        pattern.clone(),
        gen(
            "Array",
            [
                (
                    "data",
                    acompute("mergeSingleton", move |ctx| {
                        Value::recs(merged_with_singleton(ctx, &pat_data))
                    }),
                ),
                (
                    "size",
                    acompute("mergeSingletonLen", move |ctx| {
                        Value::Int(merged_with_singleton(ctx, &pat_size).len() as i64)
                    }),
                ),
            ],
            [],
        ),
    )
}

fn without_key(ctx: &GenCtx<'_>, pattern: &Pattern) -> Vec<Record> {
    let schema = ctx.ast.schema();
    let a = pattern.var("A").expect("binds A");
    let d = pattern.var("D").expect("binds D");
    let data = ctx
        .ast
        .attr(ctx.bindings.get(a), schema.expect_attr("data"))
        .as_recs();
    let key = ctx
        .ast
        .attr(ctx.bindings.get(d), schema.expect_attr("key"))
        .as_int();
    data.iter().copied().filter(|r| r.key != key).collect()
}

/// DeleteSingletonFromArray (appendix D.1's analogue):
/// `DeleteSingleton(key, Array)` → `Array ∖ key`.
fn delete_from_array(schema: &Arc<Schema>) -> RewriteRule {
    let pattern = Pattern::compile(
        schema,
        p::node(
            "DeleteSingleton",
            "D",
            [p::node("Array", "A", [], p::tru())],
            p::tru(),
        ),
    );
    let pat_data = pattern.clone();
    let pat_size = pattern.clone();
    RewriteRule::new(
        "DeleteSingletonFromArray",
        schema,
        pattern.clone(),
        gen(
            "Array",
            [
                (
                    "data",
                    acompute("filterKey", move |ctx| {
                        Value::recs(without_key(ctx, &pat_data))
                    }),
                ),
                (
                    "size",
                    acompute("filterKeyLen", move |ctx| {
                        Value::Int(without_key(ctx, &pat_size).len() as i64)
                    }),
                ),
            ],
            [],
        ),
    )
}

fn merged_arrays(ctx: &GenCtx<'_>, pattern: &Pattern) -> Vec<Record> {
    let schema = ctx.ast.schema();
    let a1 = pattern.var("A1").expect("binds A1");
    let a2 = pattern.var("A2").expect("binds A2");
    let old = ctx
        .ast
        .attr(ctx.bindings.get(a1), schema.expect_attr("data"))
        .as_recs();
    let new = ctx
        .ast
        .attr(ctx.bindings.get(a2), schema.expect_attr("data"))
        .as_recs();
    // Sorted merge; the right (newer) array wins on key collisions.
    let mut out = Vec::with_capacity(old.len() + new.len());
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        match old[i].key.cmp(&new[j].key) {
            std::cmp::Ordering::Less => {
                out.push(old[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(new[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(new[j]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&old[i..]);
    out.extend_from_slice(&new[j..]);
    out
}

/// MergeSortedConcat (appendix D.2's analogue):
/// `Concat(Array, Array)` → one merged sorted `Array`.
fn merge_arrays(schema: &Arc<Schema>) -> RewriteRule {
    let pattern = Pattern::compile(
        schema,
        p::node(
            "Concat",
            "C",
            [
                p::node("Array", "A1", [], p::tru()),
                p::node("Array", "A2", [], p::tru()),
            ],
            p::tru(),
        ),
    );
    let pat_data = pattern.clone();
    let pat_size = pattern.clone();
    RewriteRule::new(
        "MergeSortedConcat",
        schema,
        pattern.clone(),
        gen(
            "Array",
            [
                (
                    "data",
                    acompute("mergeRuns", move |ctx| {
                        Value::recs(merged_arrays(ctx, &pat_data))
                    }),
                ),
                (
                    "size",
                    acompute("mergeRunsLen", move |ctx| {
                        Value::Int(merged_arrays(ctx, &pat_size).len() as i64)
                    }),
                ),
            ],
            [],
        ),
    )
}

/// PushDownDeleteSingletonConcat: distribute a tombstone over both sides
/// of a `Concat` so it can keep sinking.
fn push_delete_through_concat(schema: &Arc<Schema>) -> RewriteRule {
    let pattern = Pattern::compile(
        schema,
        p::node(
            "DeleteSingleton",
            "D",
            [p::node(
                "Concat",
                "C",
                [p::any_as("q1"), p::any_as("q2")],
                p::tru(),
            )],
            p::tru(),
        ),
    );
    RewriteRule::new(
        "PushDownDeleteSingletonConcat",
        schema,
        pattern,
        gen(
            "Concat",
            [],
            [
                gen(
                    "DeleteSingleton",
                    [("key", acopy("D", "key"))],
                    [reuse("q1")],
                ),
                gen(
                    "DeleteSingleton",
                    [("key", acopy("D", "key"))],
                    [reuse("q2")],
                ),
            ],
        ),
    )
}

/// DeleteSingletonFromSingleton, hit case: matching keys annihilate into
/// an empty array.
fn delete_hits_singleton(schema: &Arc<Schema>) -> RewriteRule {
    let pattern = Pattern::compile(
        schema,
        p::node(
            "DeleteSingleton",
            "D",
            [p::node("Singleton", "S", [], p::tru())],
            p::eq(p::attr("D", "key"), p::attr("S", "key")),
        ),
    );
    RewriteRule::new(
        "DeleteSingletonHit",
        schema,
        pattern,
        gen(
            "Array",
            [
                (
                    "data",
                    treetoaster_core::generator::aconst(Value::recs(vec![])),
                ),
                ("size", treetoaster_core::generator::aconst(Value::Int(0))),
            ],
            [],
        ),
    )
}

/// DeleteSingletonFromSingleton, miss case: unrelated tombstone dissolves.
fn delete_misses_singleton(schema: &Arc<Schema>) -> RewriteRule {
    let pattern = Pattern::compile(
        schema,
        p::node(
            "DeleteSingleton",
            "D",
            [p::node("Singleton", "S", [], p::tru())],
            p::ne(p::attr("D", "key"), p::attr("S", "key")),
        ),
    );
    RewriteRule::new("DeleteSingletonMiss", schema, pattern, reuse("S"))
}

/// Re-associate a singleton past a nested Concat so it can keep sinking:
/// `Concat(Concat(x, y), S) → Concat(x, Concat(y, S))`. Precedence is
/// preserved (S stays newest; y still shadows x), and the singleton's
/// left-sibling subtree strictly shrinks, so the rule terminates.
fn reassociate_concat_singleton(schema: &Arc<Schema>) -> RewriteRule {
    let pattern = Pattern::compile(
        schema,
        p::node(
            "Concat",
            "C",
            [
                p::node("Concat", "I", [p::any_as("x"), p::any_as("y")], p::tru()),
                p::node("Singleton", "S", [], p::tru()),
            ],
            p::tru(),
        ),
    );
    RewriteRule::new(
        "ReassociateConcatSingleton",
        schema,
        pattern,
        gen(
            "Concat",
            [],
            [reuse("x"), gen("Concat", [], [reuse("y"), reuse("S")])],
        ),
    )
}

/// Two stacked singletons become a (sorted) two-record array; the right
/// (newer) one wins on key collision.
fn merge_singleton_pair(schema: &Arc<Schema>) -> RewriteRule {
    let pattern = Pattern::compile(
        schema,
        p::node(
            "Concat",
            "C",
            [
                p::node("Singleton", "S1", [], p::tru()),
                p::node("Singleton", "S2", [], p::tru()),
            ],
            p::tru(),
        ),
    );
    fn records(ctx: &GenCtx<'_>, pattern: &Pattern) -> Vec<Record> {
        let schema = ctx.ast.schema();
        let key = schema.expect_attr("key");
        let value = schema.expect_attr("value");
        let read = |name: &str| {
            let v = pattern.var(name).expect("bound");
            Record::new(
                ctx.ast.attr(ctx.bindings.get(v), key).as_int(),
                ctx.ast.attr(ctx.bindings.get(v), value).as_int(),
            )
        };
        let (old, new) = (read("S1"), read("S2"));
        if old.key == new.key {
            vec![new]
        } else if old.key < new.key {
            vec![old, new]
        } else {
            vec![new, old]
        }
    }
    let pat_data = pattern.clone();
    let pat_size = pattern.clone();
    RewriteRule::new(
        "MergeSingletonPair",
        schema,
        pattern.clone(),
        gen(
            "Array",
            [
                (
                    "data",
                    acompute("pairRun", move |ctx| Value::recs(records(ctx, &pat_data))),
                ),
                (
                    "size",
                    acompute("pairLen", move |ctx| {
                        Value::Int(records(ctx, &pat_size).len() as i64)
                    }),
                ),
            ],
            [],
        ),
    )
}

/// The paper's five rules plus the appendix's terminal/merge rules —
/// a set under which the structure converges to cracked sorted arrays.
pub fn full_rules(schema: &Arc<Schema>, config: RuleConfig) -> RuleSet {
    let mut rules = paper_rules(schema, config);
    rules.push(merge_singleton_into_array(schema));
    rules.push(delete_from_array(schema));
    rules.push(merge_arrays(schema));
    rules.push(push_delete_through_concat(schema));
    rules.push(delete_hits_singleton(schema));
    rules.push(delete_misses_singleton(schema));
    rules.push(reassociate_concat_singleton(schema));
    rules.push(merge_singleton_pair(schema));
    rules
}

/// [`paper_rules`] plus `extra` never-firing **probe rules** — the
/// synthetic rule-count axis of the `tt-bench --rule-scale` sweep.
///
/// Every probe matches the structural shape `BinTree(Array, Array)` —
/// the hottest interior shape of a cracked tree — and differs only in
/// its separator constraint, which compares against a distinct
/// *negative* sentinel. Workload keys are never negative, so no probe
/// can ever fire and the tree evolves identically at every probe
/// count; what scales with `extra` is pure *match effort*. The shared
/// structure is the point: the compiled automaton collapses all probes
/// (and their shared prefix) into one trie path walked once per
/// candidate node, while the per-rule baseline pays one full pattern
/// evaluation per probe per `BinTree` it visits.
pub fn scaled_rules(schema: &Arc<Schema>, config: RuleConfig, extra: usize) -> RuleSet {
    let mut rules = paper_rules(schema, config);
    for i in 0..extra {
        let pattern = Pattern::compile(
            schema,
            p::node(
                "BinTree",
                "B",
                [
                    p::node("Array", "L", [], p::tru()),
                    p::node("Array", "R", [], p::tru()),
                ],
                p::eq(p::attr("B", "sep"), p::int(-1 - i as i64)),
            ),
        );
        // The generator is never invoked (the sentinel never matches);
        // reusing the left run keeps the rule well-formed.
        rules.push(RewriteRule::new(
            &format!("ScaleProbe{i}"),
            schema,
            pattern,
            reuse("L"),
        ));
    }
    rules
}

/// PivotLeft/PivotRight tree rotations (appendix; used by ablations
/// only — they have no decreasing measure, so do not drive them to a
/// fixpoint).
pub fn pivot_rules(schema: &Arc<Schema>) -> RuleSet {
    // PivotRight: BinTree(s1, BinTree(s2, a, b), c) →
    //             BinTree(s2, a, BinTree(s1, b, c)).
    let right = {
        let pattern = Pattern::compile(
            schema,
            p::node(
                "BinTree",
                "T",
                [
                    p::node("BinTree", "U", [p::any_as("a"), p::any_as("b")], p::tru()),
                    p::any_as("c"),
                ],
                p::tru(),
            ),
        );
        RewriteRule::new(
            "PivotRight",
            schema,
            pattern,
            gen(
                "BinTree",
                [("sep", acopy("U", "sep"))],
                [
                    reuse("a"),
                    gen(
                        "BinTree",
                        [("sep", acopy("T", "sep"))],
                        [reuse("b"), reuse("c")],
                    ),
                ],
            ),
        )
    };
    // PivotLeft: BinTree(s1, a, BinTree(s2, b, c)) →
    //            BinTree(s2, BinTree(s1, a, b), c).
    let left = {
        let pattern = Pattern::compile(
            schema,
            p::node(
                "BinTree",
                "T",
                [
                    p::any_as("a"),
                    p::node("BinTree", "U", [p::any_as("b"), p::any_as("c")], p::tru()),
                ],
                p::tru(),
            ),
        );
        RewriteRule::new(
            "PivotLeft",
            schema,
            pattern,
            gen(
                "BinTree",
                [("sep", acopy("U", "sep"))],
                [
                    gen(
                        "BinTree",
                        [("sep", acopy("T", "sep"))],
                        [reuse("a"), reuse("b")],
                    ),
                    reuse("c"),
                ],
            ),
        )
    };
    RuleSet::from_rules(vec![right, left])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::JitdIndex;
    use crate::schema::jitd_schema;
    use treetoaster_core::{MatchCore, NaiveStrategy};
    use tt_pattern::match_node;

    fn small_config() -> RuleConfig {
        RuleConfig { crack_threshold: 2 }
    }

    /// Applies `rule` once wherever it matches; returns true if it fired.
    fn fire_once(idx: &mut JitdIndex, rules: &Arc<RuleSet>, rid: usize, tick: u64) -> bool {
        let mut naive = NaiveStrategy::new(rules.clone());
        let Some(site) = naive.find_one(idx.ast(), rid) else {
            return false;
        };
        let rule = rules.get(rid);
        let bindings = match_node(idx.ast(), site, &rule.pattern).unwrap();
        rule.apply(idx.ast_mut(), site, &bindings, tick);
        true
    }

    #[test]
    fn all_five_paper_rules_have_expected_shape() {
        let schema = jitd_schema();
        let rules = paper_rules(&schema, RuleConfig::default());
        assert_eq!(rules.len(), 5);
        let names: Vec<&str> = rules.iter().map(|(_, r)| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "CrackArray",
                "PushDownSingletonBtreeLeft",
                "PushDownSingletonBtreeRight",
                "PushDownDontDeleteSingletonBtreeLeft",
                "PushDownDontDeleteSingletonBtreeRight",
            ]
        );
        // All five are Definition-7 safe (wildcards reused) → inlinable.
        for (_, r) in rules.iter() {
            assert!(r.safe_for_inline(), "{} must be inlinable", r.name);
        }
        // Pattern depths: CrackArray 0; push-downs reach their wildcard
        // leaves two edges below the root (Concat→BinTree→q₁).
        assert_eq!(rules.get(0).pattern.depth(), 0);
        assert_eq!(rules.get(1).pattern.depth(), 2);
        assert_eq!(rules.get(2).pattern.depth(), 2);
        assert_eq!(rules.get(3).pattern.depth(), 2);
        assert_eq!(rules.get(4).pattern.depth(), 2);
    }

    #[test]
    fn crack_array_partitions_and_preserves_semantics() {
        let schema = jitd_schema();
        let rules = Arc::new(paper_rules(&schema, small_config()));
        let records: Vec<Record> = (0..10).map(|i| Record::new(i, i * 10)).collect();
        let mut idx = JitdIndex::load(records);
        assert!(fire_once(&mut idx, &rules, 0, 7));
        idx.check_structure().unwrap();
        // Root is now a BinTree with two arrays, both non-empty.
        let root = idx.ast().root();
        assert_eq!(idx.ast().label(root), idx.labels().bintree);
        for i in 0..10 {
            assert_eq!(idx.get(i), Some(i * 10), "key {i} survived the crack");
        }
    }

    #[test]
    fn crack_makes_progress_until_threshold() {
        let schema = jitd_schema();
        let rules = Arc::new(paper_rules(&schema, small_config()));
        let records: Vec<Record> = (0..64).map(|i| Record::new(i, i)).collect();
        let mut idx = JitdIndex::load(records);
        let mut tick = 0;
        while fire_once(&mut idx, &rules, 0, tick) {
            tick += 1;
            assert!(tick < 200, "cracking must terminate");
        }
        idx.check_structure().unwrap();
        // Every remaining array is at or under the threshold.
        let l = *idx.labels();
        for n in idx.ast().descendants(idx.ast().root()) {
            if idx.ast().label(n) == l.array {
                assert!(idx.ast().attr(n, l.size).as_int() <= 2);
            }
        }
    }

    #[test]
    fn pushdown_singleton_routes_by_separator() {
        let schema = jitd_schema();
        let rules = Arc::new(paper_rules(&schema, small_config()));
        let records: Vec<Record> = (0..10).map(|i| Record::new(i, i)).collect();
        let mut idx = JitdIndex::load(records);
        assert!(fire_once(&mut idx, &rules, 0, 3), "crack first");
        idx.wrap_insert(4, 444);
        // Either the left or the right push-down applies (not both).
        let fired_left = fire_once(&mut idx, &rules, 1, 0);
        let fired_right = fire_once(&mut idx, &rules, 2, 0);
        assert!(fired_left ^ fired_right, "exactly one side applies");
        idx.check_structure().unwrap();
        assert_eq!(idx.get(4), Some(444));
        // The root is a BinTree again (Concat eliminated).
        assert_eq!(idx.ast().label(idx.ast().root()), idx.labels().bintree);
    }

    #[test]
    fn pushdown_delete_routes_by_separator() {
        let schema = jitd_schema();
        let rules = Arc::new(paper_rules(&schema, small_config()));
        let records: Vec<Record> = (0..10).map(|i| Record::new(i, i)).collect();
        let mut idx = JitdIndex::load(records);
        assert!(fire_once(&mut idx, &rules, 0, 3));
        idx.wrap_delete(7);
        let fired = fire_once(&mut idx, &rules, 3, 0) || fire_once(&mut idx, &rules, 4, 0);
        assert!(fired);
        idx.check_structure().unwrap();
        assert_eq!(
            idx.get(7),
            None,
            "tombstone still effective after push-down"
        );
        assert_eq!(idx.get(6), Some(6));
    }

    #[test]
    fn full_rules_converge_and_preserve_contents() {
        let schema = jitd_schema();
        let rules = Arc::new(full_rules(&schema, RuleConfig { crack_threshold: 4 }));
        let records: Vec<Record> = (0..32).map(|i| Record::new(i, 100 + i)).collect();
        let mut idx = JitdIndex::load(records);
        idx.wrap_insert(100, 1);
        idx.wrap_delete(5);
        idx.wrap_insert(6, 666);
        // Drive all rules to fixpoint.
        let mut tick = 0;
        loop {
            let mut fired = false;
            for rid in 0..rules.len() {
                while fire_once(&mut idx, &rules, rid, tick) {
                    tick += 1;
                    fired = true;
                    assert!(tick < 2000, "must converge");
                }
            }
            if !fired {
                break;
            }
        }
        idx.check_structure().unwrap();
        // Fixpoint: no pending updates (Singleton / DeleteSingleton)
        // remain; structural Concats may persist where sibling BinTrees
        // met (merging those needs the appendix's MergeSortedBTrees).
        let l = *idx.labels();
        for n in idx.ast().descendants(idx.ast().root()) {
            let label = idx.ast().label(n);
            assert!(
                label != l.singleton && label != l.delete_singleton,
                "pending update at fixpoint"
            );
        }
        assert_eq!(idx.get(5), None);
        assert_eq!(idx.get(6), Some(666));
        assert_eq!(idx.get(100), Some(1));
        assert_eq!(idx.get(31), Some(131));
    }

    #[test]
    fn scale_probes_share_structure_and_never_fire() {
        let schema = jitd_schema();
        let rules = Arc::new(scaled_rules(&schema, small_config(), 8));
        assert_eq!(rules.len(), 5 + 8);
        // All probes bucket under BinTree and share one automaton path:
        // adding 8 structurally identical probes must not add 8 paths.
        let bintree = schema.expect_label("BinTree");
        assert_eq!(rules.rules_by_root_label(bintree).len(), 8);
        let base = scaled_rules(&schema, small_config(), 1);
        assert_eq!(
            rules.automaton().state_count(),
            base.automaton().state_count(),
            "probes differ only in constraints, so they merge into one trie path"
        );
        // Crack a tree and push an insert through: probes never fire.
        let records: Vec<Record> = (0..32).map(|i| Record::new(i, i)).collect();
        let mut idx = JitdIndex::load(records);
        let mut tick = 0;
        loop {
            let mut fired = false;
            for rid in 0..rules.len() {
                while fire_once(&mut idx, &rules, rid, tick) {
                    tick += 1;
                    fired = true;
                    assert!(
                        rid < 5,
                        "probe rule {rid} fired — sentinel separators must never match"
                    );
                    assert!(tick < 1000, "must converge");
                }
            }
            if !fired {
                break;
            }
        }
        idx.check_structure().unwrap();
        for i in 0..32 {
            assert_eq!(idx.get(i), Some(i));
        }
    }

    #[test]
    fn pivot_rotations_preserve_semantics() {
        let schema = jitd_schema();
        let crack = Arc::new(paper_rules(&schema, RuleConfig { crack_threshold: 2 }));
        let pivots = Arc::new(pivot_rules(&schema));
        let records: Vec<Record> = (0..16).map(|i| Record::new(i, i)).collect();
        let mut idx = JitdIndex::load(records);
        let mut tick = 0;
        while fire_once(&mut idx, &crack, 0, tick) {
            tick += 1;
        }
        // One rotation in each direction (if shapes permit).
        let _ = fire_once(&mut idx, &pivots, 0, 0);
        let _ = fire_once(&mut idx, &pivots, 1, 0);
        idx.check_structure().unwrap();
        for i in 0..16 {
            assert_eq!(idx.get(i), Some(i));
        }
    }
}
