//! The instrumented JITD runtime (paper Figure 8's benchmark module).
//!
//! Drives a [`JitdIndex`] through YCSB operations and reorganization
//! steps with a pluggable search strategy — one of the five the paper
//! compares — measuring, per §7.2: (i) time spent finding a pattern
//! match, (ii) time spent maintaining support structures, and
//! (iii) memory allocated.

use crate::index::JitdIndex;
use crate::rules::{paper_rules, RuleConfig};
use crate::schema::jitd_schema;
use std::sync::Arc;
use treetoaster_core::{
    IndexStrategy, MatchSource, NaiveStrategy, ReplaceCtx, RuleFired, RuleId, RuleSet,
    TreeToasterEngine,
};
use tt_ast::Record;
use tt_ivm::{ClassicIvm, DbtIvm};
use tt_metrics::{now_ns, SummaryBuilder};
use tt_pattern::{matches_with, AutomatonScratch, Bindings};
use tt_ycsb::Op;

/// The five search strategies of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Full-tree scan per search.
    Naive,
    /// Label index (§4.1).
    Index,
    /// Classic cascading IVM (Ross; DBToaster `--depth=1`).
    Classic,
    /// DBToaster-style higher-order IVM.
    Dbt,
    /// TreeToaster.
    TreeToaster,
}

impl StrategyKind {
    /// All five, in the paper's figure order.
    pub fn all() -> [StrategyKind; 5] {
        [
            StrategyKind::Naive,
            StrategyKind::Index,
            StrategyKind::Classic,
            StrategyKind::Dbt,
            StrategyKind::TreeToaster,
        ]
    }

    /// The four maintained strategies (Figures 10, 12, 13 omit Naive).
    pub fn ivm_set() -> [StrategyKind; 4] {
        [
            StrategyKind::Index,
            StrategyKind::Classic,
            StrategyKind::Dbt,
            StrategyKind::TreeToaster,
        ]
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Naive => "Naive",
            StrategyKind::Index => "Index",
            StrategyKind::Classic => "Classic",
            StrategyKind::Dbt => "DBT",
            StrategyKind::TreeToaster => "TT",
        }
    }

    /// Instantiates the strategy for a rule set over `ast` (compiled
    /// matching on, the default everywhere).
    pub fn build(self, rules: Arc<RuleSet>, ast: &tt_ast::Ast) -> Box<dyn MatchSource> {
        self.build_with(rules, ast, true)
    }

    /// [`build`](StrategyKind::build) with an explicit matcher choice:
    /// `compiled = false` keeps the one-pattern-at-a-time evaluator as
    /// the differential-testing baseline. Classic and DBT evaluate
    /// matches relationally (the bolt-on IVM engines have no tree
    /// pattern matcher to swap), so the flag only affects Naive, Index,
    /// and TreeToaster.
    pub fn build_with(
        self,
        rules: Arc<RuleSet>,
        ast: &tt_ast::Ast,
        compiled: bool,
    ) -> Box<dyn MatchSource> {
        match self {
            StrategyKind::Naive => Box::new(NaiveStrategy::new(rules).compiled(compiled)),
            StrategyKind::Index => Box::new(IndexStrategy::new(rules, ast).compiled(compiled)),
            StrategyKind::Classic => Box::new(ClassicIvm::new(rules, ast)),
            StrategyKind::Dbt => Box::new(DbtIvm::new(rules, ast)),
            StrategyKind::TreeToaster => {
                Box::new(TreeToasterEngine::new(rules).compiled_match(compiled))
            }
        }
    }
}

/// Latency samples collected by the runtime, per §7.2's three axes.
#[derive(Debug)]
pub struct JitdStats {
    /// Per rule: `find_one` latencies (Figure 9's search latency).
    pub search_ns: Vec<SummaryBuilder>,
    /// Per rule: subtree construction + pointer swap latencies.
    pub rewrite_ns: Vec<SummaryBuilder>,
    /// Per rule: view/index maintenance latencies around a rewrite.
    pub maintain_ns: Vec<SummaryBuilder>,
    /// Maintenance triggered by database operations (graft events).
    pub op_maintain_ns: SummaryBuilder,
    /// End-to-end database operation latencies.
    pub op_ns: SummaryBuilder,
    /// Batch-commit latencies (`commit_batch` calls).
    pub commit_ns: SummaryBuilder,
    /// Per rule: how many `find_one` probes surfaced a match.
    pub rule_matches: Vec<u64>,
    /// Per rule: how many rewrites were actually applied.
    pub rule_rewrites: Vec<u64>,
    /// Rewrites applied.
    pub steps: u64,
    /// Scheduler pops that bypassed arrival (FIFO) order to serve a
    /// hotter shard, or — under a threaded pool — work items drained by
    /// a non-home worker. 0 for a single-tree runtime and for plain
    /// round-robin ticking.
    pub steal_count: u64,
    /// Failed shard claims (try-lock misses that requeued the item).
    /// Only a threaded pool can contend; the single-threaded schedulers
    /// leave this 0.
    pub contended_count: u64,
    /// Times a pool worker parked on the work-queue condvar instead of
    /// spinning. 0 outside a threaded pool.
    pub parked_count: u64,
    /// Times a parked worker was woken by a notification (as opposed to
    /// its heartbeat timeout). 0 outside a threaded pool.
    pub woken_count: u64,
    /// `yield_now` calls workers made while idle or contended. With
    /// condvar parking this stays 0 at steady idle — the counter exists
    /// to prove the spin-yield path is gone.
    pub spin_yield_count: u64,
}

impl JitdStats {
    pub(crate) fn new(rule_count: usize) -> JitdStats {
        JitdStats {
            search_ns: (0..rule_count).map(|_| SummaryBuilder::new()).collect(),
            rewrite_ns: (0..rule_count).map(|_| SummaryBuilder::new()).collect(),
            maintain_ns: (0..rule_count).map(|_| SummaryBuilder::new()).collect(),
            op_maintain_ns: SummaryBuilder::new(),
            op_ns: SummaryBuilder::new(),
            commit_ns: SummaryBuilder::new(),
            rule_matches: vec![0; rule_count],
            rule_rewrites: vec![0; rule_count],
            steps: 0,
            steal_count: 0,
            contended_count: 0,
            parked_count: 0,
            woken_count: 0,
            spin_yield_count: 0,
        }
    }

    /// All maintenance samples pooled (rewrite-driven plus op-driven) —
    /// Figure 12's "IVM operational latency".
    pub fn all_maintenance_samples(&self) -> SummaryBuilder {
        let mut out = SummaryBuilder::new();
        for b in &self.maintain_ns {
            for s in b.samples() {
                out.push(*s);
            }
        }
        for s in self.op_maintain_ns.samples() {
            out.push(*s);
        }
        out
    }
}

/// Outcome of one reorganization step.
#[derive(Debug, Clone, Copy)]
pub struct StepOutcome {
    /// Whether a match was found and the rule applied.
    pub fired: bool,
    /// Time spent in `find_one`.
    pub search_ns: u64,
    /// Time spent constructing/applying the replacement.
    pub rewrite_ns: u64,
    /// Time spent in strategy maintenance (before + after).
    pub maintain_ns: u64,
}

/// The runtime: index + rules + one search strategy + instrumentation.
pub struct Jitd {
    index: JitdIndex,
    rules: Arc<RuleSet>,
    strategy: Box<dyn MatchSource>,
    kind: StrategyKind,
    tick: u64,
    /// Reusable binding environment for the per-rewrite match
    /// re-derivation, so a steady-state reorganization step allocates
    /// nothing outside the rewrite itself.
    bindings: Bindings,
    /// Scratch for the compiled re-derivation's straight-line program.
    scratch: AutomatonScratch,
    /// Matcher selection, mirrored into the strategy at construction.
    compiled: bool,
    /// Collected measurements.
    pub stats: JitdStats,
}

impl Jitd {
    /// Builds a runtime with the paper's five rules, loads `records`,
    /// and initializes the strategy (compiled matching on).
    pub fn new(kind: StrategyKind, config: RuleConfig, records: Vec<Record>) -> Jitd {
        Self::with_matcher(kind, config, records, true)
    }

    /// [`new`](Jitd::new) with an explicit matcher choice —
    /// `compiled = false` runs the one-pattern-at-a-time baseline
    /// end to end (strategy search *and* binding re-derivation).
    pub fn with_matcher(
        kind: StrategyKind,
        config: RuleConfig,
        records: Vec<Record>,
        compiled: bool,
    ) -> Jitd {
        let schema = jitd_schema();
        let rules = Arc::new(paper_rules(&schema, config));
        Self::with_rules_matcher(kind, rules, records, compiled)
    }

    /// Builds a runtime over an explicit rule set (compiled matching on).
    pub fn with_rules(kind: StrategyKind, rules: Arc<RuleSet>, records: Vec<Record>) -> Jitd {
        Self::with_rules_matcher(kind, rules, records, true)
    }

    /// Builds a runtime over an explicit rule set and matcher choice.
    pub fn with_rules_matcher(
        kind: StrategyKind,
        rules: Arc<RuleSet>,
        records: Vec<Record>,
        compiled: bool,
    ) -> Jitd {
        let index = JitdIndex::load(records);
        let strategy = kind.build_with(rules.clone(), index.ast(), compiled);
        Self::from_strategy(kind, rules, index, compiled, strategy)
    }

    /// Builds a runtime around a caller-constructed strategy (e.g. a
    /// generic-mode [`treetoaster_core::TreeToasterEngine`], which
    /// [`StrategyKind::build_with`] never produces) — the bench
    /// rule-scale driver measures the subtree-walk maintenance path
    /// through this. `kind` is only the reporting label; `compiled`
    /// must match how `strategy` was configured so the runtime's
    /// binding re-derivation takes the same matcher path.
    pub fn from_strategy(
        kind: StrategyKind,
        rules: Arc<RuleSet>,
        index: JitdIndex,
        compiled: bool,
        mut strategy: Box<dyn MatchSource>,
    ) -> Jitd {
        strategy.rebuild(index.ast());
        let stats = JitdStats::new(rules.len());
        Jitd {
            index,
            rules,
            strategy,
            kind,
            tick: 0,
            bindings: Bindings::default(),
            scratch: AutomatonScratch::default(),
            compiled,
            stats,
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &JitdIndex {
        &self.index
    }

    /// The rules driving reorganization.
    pub fn rules(&self) -> &Arc<RuleSet> {
        &self.rules
    }

    /// Which strategy is plugged in.
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// Executes one YCSB operation, wrapping writes into the AST and
    /// notifying the strategy (graft maintenance is timed).
    pub fn execute(&mut self, op: &Op) {
        let t0 = now_ns();
        match *op {
            Op::Read { key } => {
                std::hint::black_box(self.index.get(key));
            }
            Op::Scan { key, len } => {
                std::hint::black_box(self.index.scan(key, len));
            }
            Op::Update { key, value } => {
                // The paper pushes updates down as "Singleton and
                // DeleteSingleton respectively": an update retires the
                // old version (tombstone) and installs the new one —
                // which is why its Figure 10 notes workload D (inserts
                // only) has no delete operations while A/B/F do.
                let created = self.index.wrap_delete(key);
                let m0 = now_ns();
                self.strategy.on_graft(self.index.ast(), &created);
                self.stats.op_maintain_ns.push_u64(now_ns() - m0);
                let created = self.index.wrap_insert(key, value);
                let m1 = now_ns();
                self.strategy.on_graft(self.index.ast(), &created);
                self.stats.op_maintain_ns.push_u64(now_ns() - m1);
            }
            Op::Insert { key, value } => {
                let created = self.index.wrap_insert(key, value);
                let m0 = now_ns();
                self.strategy.on_graft(self.index.ast(), &created);
                self.stats.op_maintain_ns.push_u64(now_ns() - m0);
            }
            Op::ReadModifyWrite { key, value } => {
                // Read-modify-write = a read plus an update.
                let prior = self.index.get(key).unwrap_or(0);
                let created = self.index.wrap_delete(key);
                let m0 = now_ns();
                self.strategy.on_graft(self.index.ast(), &created);
                self.stats.op_maintain_ns.push_u64(now_ns() - m0);
                let created = self.index.wrap_insert(key, value ^ prior);
                let m1 = now_ns();
                self.strategy.on_graft(self.index.ast(), &created);
                self.stats.op_maintain_ns.push_u64(now_ns() - m1);
            }
        }
        self.stats.op_ns.push_u64(now_ns() - t0);
    }

    /// Deletes a key (used by drivers that extend the YCSB mixes).
    pub fn delete(&mut self, key: i64) {
        let t0 = now_ns();
        let created = self.index.wrap_delete(key);
        let m0 = now_ns();
        self.strategy.on_graft(self.index.ast(), &created);
        self.stats.op_maintain_ns.push_u64(now_ns() - m0);
        self.stats.op_ns.push_u64(now_ns() - t0);
    }

    /// One optimizer iteration for `rule`: search, apply, maintain.
    pub fn reorganize_step(&mut self, rule: RuleId) -> StepOutcome {
        let s0 = now_ns();
        let site = self.strategy.find_one(self.index.ast(), rule);
        let search_ns = now_ns() - s0;
        self.stats.search_ns[rule].push_u64(search_ns);
        let Some(site) = site else {
            return StepOutcome {
                fired: false,
                search_ns,
                rewrite_ns: 0,
                maintain_ns: 0,
            };
        };

        self.stats.rule_matches[rule] += 1;
        let rule_def = self.rules.get(rule);
        // Re-derive bindings into the runtime's reusable environment
        // (strategies are charged equally for this step; see
        // `MatchSource::find_one`). Compiled runs the rule's
        // straight-line automaton program; baseline, the recursive
        // evaluator.
        let mut bindings = std::mem::take(&mut self.bindings);
        let live = if self.compiled {
            let hit =
                self.rules
                    .automaton()
                    .run_rule(self.index.ast(), site, rule, &mut self.scratch);
            if hit {
                bindings.clone_from(self.scratch.bindings());
            }
            hit
        } else {
            matches_with(self.index.ast(), site, &rule_def.pattern, &mut bindings)
        };
        assert!(
            live,
            "strategy returned a stale match — view maintenance bug"
        );

        let m0 = now_ns();
        self.strategy
            .before_replace(self.index.ast(), site, Some((rule, &bindings)));
        let pre_maintain = now_ns() - m0;

        let r0 = now_ns();
        let applied = rule_def.apply(self.index.ast_mut(), site, &bindings, self.tick);
        self.tick += 1;
        let rewrite_ns = now_ns() - r0;

        let ctx = ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: Some(RuleFired {
                rule,
                bindings: &bindings,
                applied: &applied,
            }),
        };
        let m1 = now_ns();
        self.strategy.after_replace(self.index.ast(), &ctx);
        let maintain_ns = pre_maintain + (now_ns() - m1);
        self.bindings = bindings;

        self.stats.rewrite_ns[rule].push_u64(rewrite_ns);
        self.stats.maintain_ns[rule].push_u64(maintain_ns);
        self.stats.rule_rewrites[rule] += 1;
        self.stats.steps += 1;
        StepOutcome {
            fired: true,
            search_ns,
            rewrite_ns,
            maintain_ns,
        }
    }

    /// True while any rule still has a match — the runtime holds
    /// reorganization backlog. A search-only probe (nothing is applied,
    /// though bolt-on strategies may flush staged deltas, as on any
    /// read): pool drivers use it to detect fleet quiescence without
    /// doing the reorganization work themselves. A sealed epoch awaiting
    /// its committer counts as backlog too — quiescence must not be
    /// reported before the last generation publishes.
    pub fn has_pending_matches(&mut self) -> bool {
        self.strategy.has_submitted()
            || (0..self.rules.len())
                .any(|rid| self.strategy.find_one(self.index.ast(), rid).is_some())
    }

    /// Tries every rule once; returns how many fired.
    pub fn reorganize_round(&mut self) -> usize {
        (0..self.rules.len())
            .filter(|&rid| self.reorganize_step(rid).fired)
            .count()
    }

    /// Runs rounds until quiescent or `max_steps` rewrites applied.
    /// Returns the number of rewrites.
    pub fn reorganize_until_quiet(&mut self, max_steps: u64) -> u64 {
        let start = self.stats.steps;
        while self.stats.steps - start < max_steps {
            if self.reorganize_round() == 0 {
                break;
            }
        }
        self.stats.steps - start
    }

    /// Opens a maintenance epoch on the plugged-in strategy: until
    /// [`commit_batch`](Jitd::commit_batch), view/index deltas from
    /// operations and rewrites may be staged and coalesced instead of
    /// applied one by one.
    pub fn begin_batch(&mut self) {
        self.strategy.begin_batch();
    }

    /// Commits the open maintenance epoch, timing the flush into
    /// `stats.commit_ns` (kept separate from the staging-side
    /// maintenance streams so the two costs can be compared).
    pub fn commit_batch(&mut self) {
        let t0 = now_ns();
        self.strategy.commit_batch();
        self.stats.commit_ns.push_u64(now_ns() - t0);
    }

    /// Seals the open maintenance epoch for a background committer
    /// instead of applying it inline ([`treetoaster_core::EpochOps::submit_commit`]):
    /// only the seal itself is timed into `stats.commit_ns`, which is
    /// the point — the apply cost moves to whoever later calls
    /// [`apply_submitted`](Jitd::apply_submitted). Returns `true` if an
    /// epoch was actually sealed.
    pub fn submit_commit(&mut self) -> bool {
        let t0 = now_ns();
        let sealed = self.strategy.submit_commit();
        self.stats.commit_ns.push_u64(now_ns() - t0);
        sealed
    }

    /// Applies a sealed epoch, if any — the committer half of the
    /// pipelined commit. Returns `true` if an epoch was applied.
    pub fn apply_submitted(&mut self) -> bool {
        self.strategy.apply_submitted()
    }

    /// True while a sealed epoch awaits its committer.
    pub fn has_submitted(&self) -> bool {
        self.strategy.has_submitted()
    }

    /// Per-epoch `(staged, canceled)` delta counters of the plugged-in
    /// strategy (the adaptive batch-sizing signal), `None` for
    /// strategies that stage nothing.
    pub fn batch_cancellation(&self) -> Option<(u64, u64)> {
        self.strategy.batch_cancellation()
    }

    /// Test oracle: the strategy's structures against a from-scratch
    /// rebuild over the live AST (stronger than
    /// [`agreement_with_naive`](Jitd::agreement_with_naive), which only
    /// compares match existence).
    pub fn check_strategy_consistent(&self) -> Result<(), String> {
        self.strategy.check_consistent(self.index.ast())
    }

    /// Strategy-held supplemental memory (Figure 11/13's axis).
    pub fn strategy_memory_bytes(&self) -> usize {
        self.strategy.memory_bytes()
    }

    /// The compiler's own AST memory (the baseline all strategies share).
    pub fn ast_memory_bytes(&self) -> usize {
        self.index.ast().memory_bytes()
    }

    /// Test oracle: for every rule, the strategy agrees with a fresh
    /// naive scan about whether a match exists.
    pub fn agreement_with_naive(&mut self) -> Result<(), String> {
        for (rid, rule) in self.rules.clone().iter() {
            let naive =
                tt_pattern::find_first(self.index.ast(), self.index.ast().root(), &rule.pattern)
                    .is_some();
            let mine = self.strategy.find_one(self.index.ast(), rid).is_some();
            if naive != mine {
                return Err(format!(
                    "strategy {} disagrees on rule {} ({}): naive={naive}, strategy={mine}",
                    self.kind.label(),
                    rid,
                    rule.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_ycsb::{Workload, WorkloadSpec};

    fn records(n: i64) -> Vec<Record> {
        (0..n).map(|i| Record::new(i, i * 2)).collect()
    }

    fn run_mixed(kind: StrategyKind) -> Jitd {
        let mut jitd = Jitd::new(kind, RuleConfig { crack_threshold: 8 }, records(128));
        let mut workload = Workload::new(WorkloadSpec::standard('A'), 128, 99);
        for _ in 0..60 {
            let op = workload.next_op();
            jitd.execute(&op);
            jitd.reorganize_round();
            jitd.agreement_with_naive().unwrap();
        }
        jitd.index.check_structure().unwrap();
        jitd
    }

    #[test]
    fn naive_runtime_mixed_workload() {
        let jitd = run_mixed(StrategyKind::Naive);
        assert!(jitd.stats.steps > 0, "reorganization happened");
        assert_eq!(jitd.strategy_memory_bytes(), 0);
    }

    #[test]
    fn index_runtime_mixed_workload() {
        let jitd = run_mixed(StrategyKind::Index);
        assert!(jitd.strategy_memory_bytes() > 0);
    }

    #[test]
    fn classic_runtime_mixed_workload() {
        let jitd = run_mixed(StrategyKind::Classic);
        assert!(jitd.strategy_memory_bytes() > 0);
    }

    #[test]
    fn dbt_runtime_mixed_workload() {
        let jitd = run_mixed(StrategyKind::Dbt);
        assert!(jitd.strategy_memory_bytes() > 0);
    }

    #[test]
    fn treetoaster_runtime_mixed_workload() {
        let jitd = run_mixed(StrategyKind::TreeToaster);
        assert!(jitd.stats.steps > 0);
    }

    #[test]
    fn all_strategies_preserve_read_semantics() {
        // Same op stream against all five strategies; point reads must
        // agree with a model BTreeMap at the end.
        let spec = WorkloadSpec::standard('A');
        for kind in StrategyKind::all() {
            let mut jitd = Jitd::new(kind, RuleConfig { crack_threshold: 8 }, records(64));
            let mut model: std::collections::BTreeMap<i64, i64> =
                (0..64).map(|i| (i, i * 2)).collect();
            let mut workload = Workload::new(spec, 64, 1234);
            for _ in 0..50 {
                let op = workload.next_op();
                match op {
                    Op::Update { key, value } | Op::Insert { key, value } => {
                        model.insert(key, value);
                    }
                    Op::ReadModifyWrite { key, value } => {
                        let prior = model.get(&key).copied().unwrap_or(0);
                        model.insert(key, value ^ prior);
                    }
                    _ => {}
                }
                jitd.execute(&op);
                jitd.reorganize_round();
            }
            for key in 0..64 {
                assert_eq!(
                    jitd.index().get(key),
                    model.get(&key).copied(),
                    "strategy {} diverged at key {key}",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn batched_epochs_preserve_semantics_for_all_strategies() {
        // Chunks of ops + a reorganization burst per epoch: after every
        // commit each strategy must equal a from-scratch rebuild.
        for kind in StrategyKind::all() {
            let mut jitd = Jitd::new(kind, RuleConfig { crack_threshold: 8 }, records(96));
            let mut workload = Workload::new(WorkloadSpec::standard('A'), 96, 7);
            let mut done = 0;
            while done < 48 {
                jitd.begin_batch();
                for _ in 0..8 {
                    let op = workload.next_op();
                    jitd.execute(&op);
                    done += 1;
                }
                jitd.reorganize_until_quiet(u64::MAX);
                jitd.commit_batch();
                jitd.check_strategy_consistent()
                    .unwrap_or_else(|e| panic!("{} inconsistent: {e}", kind.label()));
                jitd.agreement_with_naive().unwrap();
            }
            assert!(!jitd.stats.commit_ns.is_empty());
            jitd.index.check_structure().unwrap();
        }
    }

    #[test]
    fn baseline_matcher_runtime_agrees_with_compiled() {
        // Same op stream, same seed, matcher flipped: the two runtimes
        // must fire the same rewrites and answer identical point reads.
        // (Classic/DBT ignore the flag — their matching is relational.)
        let ops: Vec<Op> = {
            let mut workload = Workload::new(WorkloadSpec::standard('A'), 96, 5);
            (0..40).map(|_| workload.next_op()).collect()
        };
        for kind in [
            StrategyKind::Naive,
            StrategyKind::Index,
            StrategyKind::TreeToaster,
        ] {
            let cfg = RuleConfig { crack_threshold: 8 };
            let mut compiled = Jitd::with_matcher(kind, cfg, records(96), true);
            let mut baseline = Jitd::with_matcher(kind, cfg, records(96), false);
            for op in &ops {
                compiled.execute(op);
                baseline.execute(op);
                compiled.reorganize_round();
                baseline.reorganize_round();
            }
            assert_eq!(
                compiled.stats.rule_rewrites,
                baseline.stats.rule_rewrites,
                "{} fired different rewrites across matchers",
                kind.label()
            );
            assert!(compiled.stats.rule_matches.iter().sum::<u64>() > 0);
            compiled.agreement_with_naive().unwrap();
            baseline.agreement_with_naive().unwrap();
            for key in 0..96 {
                assert_eq!(compiled.index().get(key), baseline.index().get(key));
            }
        }
    }

    #[test]
    fn reorganize_until_quiet_reaches_paper_rule_fixpoint() {
        let mut jitd = Jitd::new(
            StrategyKind::TreeToaster,
            RuleConfig { crack_threshold: 4 },
            records(64),
        );
        let applied = jitd.reorganize_until_quiet(10_000);
        assert!(applied > 0);
        // At quiescence no rule matches (agreement check covers all).
        for rid in 0..jitd.rules().len() {
            assert!(!jitd.reorganize_step(rid).fired);
        }
        jitd.index.check_structure().unwrap();
    }

    #[test]
    fn delete_flows_through_tombstone_rules() {
        let mut jitd = Jitd::new(
            StrategyKind::TreeToaster,
            RuleConfig { crack_threshold: 4 },
            records(32),
        );
        jitd.reorganize_until_quiet(1000);
        jitd.delete(10);
        jitd.reorganize_until_quiet(1000);
        jitd.agreement_with_naive().unwrap();
        assert_eq!(jitd.index().get(10), None);
        assert_eq!(jitd.index().get(11), Some(22));
    }

    #[test]
    fn stats_are_recorded() {
        let jitd = run_mixed(StrategyKind::TreeToaster);
        let total_searches: usize = jitd.stats.search_ns.iter().map(|b| b.len()).sum();
        assert!(total_searches > 0);
        assert!(!jitd.stats.op_ns.is_empty());
        assert!(!jitd.stats.all_maintenance_samples().is_empty());
    }
}
