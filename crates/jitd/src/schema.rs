//! The JustInTimeData node schema (paper §7.1).

use std::sync::Arc;
use tt_ast::{Schema, SchemaBuilder};

/// Builds the five-label JITD schema.
///
/// `Array` carries its record run plus an explicit `size` attribute so
/// the CrackArray eligibility test is a plain constraint (`size > τ`) —
/// which keeps every pattern within the paper's `Θ` grammar and lets the
/// bolt-on engines project the (large) `data` payload out of their shadow
/// copies (§3.2).
pub fn jitd_schema() -> Arc<Schema> {
    builder().finish()
}

fn builder() -> SchemaBuilder {
    Schema::builder()
        .label("Array", &["data", "size"], 0)
        .label("Singleton", &["key", "value"], 0)
        .label("DeleteSingleton", &["key"], 1)
        .label("Concat", &[], 2)
        .label("BinTree", &["sep"], 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_labels_present() {
        let s = jitd_schema();
        for name in ["Array", "Singleton", "DeleteSingleton", "Concat", "BinTree"] {
            assert!(s.label(name).is_some(), "{name} missing");
        }
        assert_eq!(s.label_count(), 5);
    }

    #[test]
    fn child_bounds_match_paper() {
        let s = jitd_schema();
        assert_eq!(s.def(s.expect_label("Array")).max_children, 0);
        assert_eq!(s.def(s.expect_label("Singleton")).max_children, 0);
        assert_eq!(s.def(s.expect_label("DeleteSingleton")).max_children, 1);
        assert_eq!(s.def(s.expect_label("Concat")).max_children, 2);
        assert_eq!(s.def(s.expect_label("BinTree")).max_children, 2);
    }

    #[test]
    fn attribute_sets() {
        let s = jitd_schema();
        let array = s.expect_label("Array");
        assert!(s.attr_index(array, s.expect_attr("data")).is_some());
        assert!(s.attr_index(array, s.expect_attr("size")).is_some());
        let singleton = s.expect_label("Singleton");
        assert!(s.attr_index(singleton, s.expect_attr("key")).is_some());
        assert!(s.attr_index(singleton, s.expect_attr("value")).is_some());
        let bintree = s.expect_label("BinTree");
        assert!(s.attr_index(bintree, s.expect_attr("sep")).is_some());
    }
}
