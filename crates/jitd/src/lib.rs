//! JustInTimeData: a just-in-time data-structure compiler (paper §7).
//!
//! "An index designed like a just-in-time compiler. JustInTimeData's
//! underlying data structure is modeled after an AST, allowing a JIT
//! runtime to incrementally and asynchronously rewrite it in the
//! background using pattern-replacement rules to support more efficient
//! reads."
//!
//! Five node types mimic the building blocks of index structures:
//!
//! ```text
//! (Array,           data:Seq<key,value>, size:Int,  ∅)
//! (Singleton,       key:Int, value:Int,             ∅)
//! (DeleteSingleton, key:Int,                        N₁)
//! (Concat,          ∅,                              N₁, N₂)
//! (BinTree,         sep:Int,                        N₁, N₂)
//! ```
//!
//! Inserts wrap the root in `Concat(root, Singleton)`, deletes in
//! `DeleteSingleton(key, root)`; the reorganizer then drives the paper's
//! five pattern-replacement rules (CrackArray and the four push-down
//! rules) to migrate the structure toward a cracked binary tree —
//! database cracking \[19\] reframed as AST rewriting.
//!
//! - [`schema`] — the node schema.
//! - [`index`] — the key/value operations (`get`, `scan`, wrap-insert,
//!   wrap-delete) with last-writer-wins shadowing semantics.
//! - [`rules`] — the paper's rules plus appendix extension rules.
//! - [`runtime`] — the instrumented optimizer loop over any
//!   [`treetoaster_core::MatchSource`] strategy, recording the search /
//!   rewrite / maintenance latencies the paper's figures report.
//! - [`fleet`] — the multi-tree runtime: one index per forest shard, all
//!   maintained by a shared-rule `ForestEngine`, reorganized by a
//!   heat-priority scheduler (workloads G/H/I's bed).
//! - [`steal`] — the shared work queue behind work-stealing
//!   reorganization: heat-gated admission, per-shard dedup, and the
//!   steal/contention ledger.
//! - [`concurrent`] — the asynchronous deployment, sharded: per-shard
//!   mutexes with either one dedicated background reorganizer per shard
//!   or a work-stealing pool of fewer workers draining the shared
//!   queue via try-lock claims.

pub mod concurrent;
pub mod fleet;
pub mod index;
pub mod rules;
pub mod runtime;
pub mod schema;
pub mod steal;

pub use concurrent::{AsyncJitd, CommitMode, WorkerMode};
pub use fleet::JitdFleet;
pub use index::{JitdIndex, JitdLabels};
pub use rules::{full_rules, paper_rules, pivot_rules, scaled_rules, RuleConfig};
pub use runtime::{Jitd, JitdStats, StepOutcome, StrategyKind};
pub use schema::jitd_schema;
pub use steal::{StealConfig, StealStats, WorkQueue};
