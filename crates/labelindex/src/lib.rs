//! Secondary index on AST node labels (paper §4.1).
//!
//! "For each node label, the index maintains pointers to all nodes with
//! that label. Updates to the AST are propagated into the index. Pattern
//! match queries can use this index to scan a subset of the AST that
//! includes only nodes with the appropriate label" — Algorithm 1.
//!
//! This is the **Index** baseline of the evaluation: maintenance is one
//! hash insert/remove per changed node (cheap, small), but a search still
//! re-checks recursive sub-patterns and constraints on every candidate,
//! which is why it scales poorly on update-heavy workloads (Figure 10's
//! workloads A and F).

use tt_ast::{Ast, Label, NodeId, NodeMap, Schema};
use tt_pattern::{match_node, Bindings, Pattern, PatternNode};

/// One label's posting list: a dense vector for cheap iteration plus a
/// page-backed position map (`tt_ast::dense::NodeMap`) for O(1) removal
/// (`swap_remove`) with no hashing on the per-node maintenance path.
#[derive(Debug, Default)]
struct Bucket {
    items: Vec<NodeId>,
    pos: NodeMap<u32>,
}

impl Bucket {
    fn insert(&mut self, id: NodeId) {
        debug_assert!(!self.pos.contains_key(id), "{id:?} indexed twice");
        self.pos.insert(id, self.items.len() as u32);
        self.items.push(id);
    }

    fn remove(&mut self, id: NodeId) {
        let Some(at) = self.pos.remove(id) else {
            panic!("removing unindexed node {id:?}");
        };
        let at = at as usize;
        self.items.swap_remove(at);
        if let Some(&moved) = self.items.get(at) {
            self.pos.insert(moved, at as u32);
        }
    }

    fn memory_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<NodeId>() + self.pos.memory_bytes()
    }
}

/// The label index: `ℓ → { nodes with label ℓ }`.
#[derive(Debug)]
pub struct LabelIndex {
    buckets: Vec<Bucket>,
}

impl LabelIndex {
    /// An empty index over `schema`'s labels.
    pub fn new(schema: &Schema) -> LabelIndex {
        LabelIndex {
            buckets: (0..schema.label_count())
                .map(|_| Bucket::default())
                .collect(),
        }
    }

    /// Builds the index for every node reachable from `root`.
    pub fn build_from(ast: &Ast, root: NodeId) -> LabelIndex {
        let mut idx = LabelIndex::new(ast.schema());
        if !root.is_null() {
            for n in ast.descendants(root) {
                idx.insert(ast.label(n), n);
            }
        }
        idx
    }

    /// Registers a new node.
    #[inline]
    pub fn insert(&mut self, label: Label, id: NodeId) {
        self.buckets[label.0 as usize].insert(id);
    }

    /// Unregisters a removed node.
    #[inline]
    pub fn remove(&mut self, label: Label, id: NodeId) {
        self.buckets[label.0 as usize].remove(id);
    }

    /// All nodes currently carrying `label` (arbitrary order).
    #[inline]
    pub fn nodes(&self, label: Label) -> &[NodeId] {
        &self.buckets[label.0 as usize].items
    }

    /// Number of nodes with `label`.
    pub fn len(&self, label: Label) -> usize {
        self.buckets[label.0 as usize].items.len()
    }

    /// Total indexed nodes.
    pub fn total_len(&self) -> usize {
        self.buckets.iter().map(|b| b.items.len()).sum()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.total_len() == 0
    }

    /// Algorithm 1: scan the posting list for the pattern's root label,
    /// re-checking the full pattern (recursive matches and constraints)
    /// on each candidate. For an `AnyNode` root the whole tree matches,
    /// so the AST root is returned (line 2 of the algorithm).
    pub fn index_lookup(&self, ast: &Ast, pattern: &Pattern) -> Option<(NodeId, Bindings)> {
        self.index_lookup_where(ast, pattern, |_, _| true)
    }

    /// [`index_lookup`](LabelIndex::index_lookup) restricted to candidates
    /// passing `live`. Batched maintenance uses this as its read overlay:
    /// posting-list entries staged for removal in an open epoch may point
    /// at freed (or reused) arena slots, so they must be skipped *before*
    /// the pattern matcher dereferences them.
    pub fn index_lookup_where(
        &self,
        ast: &Ast,
        pattern: &Pattern,
        live: impl Fn(Label, NodeId) -> bool,
    ) -> Option<(NodeId, Bindings)> {
        match pattern.root() {
            PatternNode::Any { .. } => {
                let root = ast.root();
                if root.is_null() {
                    None
                } else {
                    match_node(ast, root, pattern).map(|b| (root, b))
                }
            }
            PatternNode::Match { label, .. } => self
                .nodes(*label)
                .iter()
                .filter(|&&n| live(*label, n))
                .find_map(|&n| match_node(ast, n, pattern).map(|b| (n, b))),
        }
    }

    /// All matches found through the index (for tests/oracles).
    pub fn index_lookup_all(&self, ast: &Ast, pattern: &Pattern) -> Vec<NodeId> {
        match pattern.root() {
            PatternNode::Any { .. } => tt_pattern::match_set(ast, ast.root(), pattern),
            PatternNode::Match { label, .. } => self
                .nodes(*label)
                .iter()
                .copied()
                .filter(|&n| tt_pattern::matches(ast, n, pattern))
                .collect(),
        }
    }

    /// Approximate heap bytes (the paper reports ~28 bytes per node for a
    /// C++ `unordered_set`; our bucket layout is in the same regime).
    pub fn memory_bytes(&self) -> usize {
        self.buckets.iter().map(Bucket::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_ast::schema::arith_schema;
    use tt_ast::sexpr::parse_sexpr;
    use tt_pattern::dsl::*;

    fn tree(text: &str) -> (Ast, NodeId) {
        let mut ast = Ast::new(arith_schema());
        let id = parse_sexpr(&mut ast, text).unwrap();
        ast.set_root(id);
        (ast, id)
    }

    fn add_zero(ast: &Ast) -> Pattern {
        Pattern::compile(
            ast.schema(),
            node(
                "Arith",
                "A",
                [
                    node("Const", "B", [], eq(attr("B", "val"), int(0))),
                    node("Var", "C", [], tru()),
                ],
                eq(attr("A", "op"), str_("+")),
            ),
        )
    }

    #[test]
    fn build_counts_labels() {
        let (ast, root) =
            tree(r#"(Arith op="+" (Arith op="*" (Const val=2) (Var name="y")) (Var name="x"))"#);
        let idx = LabelIndex::build_from(&ast, root);
        let schema = ast.schema();
        assert_eq!(idx.len(schema.expect_label("Arith")), 2);
        assert_eq!(idx.len(schema.expect_label("Const")), 1);
        assert_eq!(idx.len(schema.expect_label("Var")), 2);
        assert_eq!(idx.total_len(), 5);
    }

    #[test]
    fn example_4_1_lookup() {
        // "retrieve a list of all Arith nodes from the index and
        //  iteratively check each for a pattern match."
        let (ast, root) = tree(r#"(Arith op="+" (Const val=0) (Var name="b"))"#);
        let idx = LabelIndex::build_from(&ast, root);
        let q = add_zero(&ast);
        let (found, bindings) = idx.index_lookup(&ast, &q).unwrap();
        assert_eq!(found, root);
        assert_eq!(bindings.get(q.var("A").unwrap()), root);
    }

    #[test]
    fn lookup_misses_when_constraint_fails() {
        let (ast, root) = tree(r#"(Arith op="+" (Const val=3) (Var name="b"))"#);
        let idx = LabelIndex::build_from(&ast, root);
        assert!(idx.index_lookup(&ast, &add_zero(&ast)).is_none());
    }

    #[test]
    fn maintenance_tracks_insert_remove() {
        let (mut ast, root) = tree(r#"(Arith op="*" (Const val=2) (Var name="y"))"#);
        let mut idx = LabelIndex::build_from(&ast, root);
        let schema = ast.schema().clone();
        let constant = schema.expect_label("Const");
        // Replace Var(y) with Const(0): one remove + one insert.
        let y = ast.children(root)[1];
        let zero = ast.alloc(constant, vec![tt_ast::Value::Int(0)], vec![]);
        idx.insert(constant, zero);
        ast.replace(y, zero);
        idx.remove(schema.expect_label("Var"), y);
        ast.free_subtree(y);
        assert_eq!(idx.len(constant), 2);
        assert_eq!(idx.len(schema.expect_label("Var")), 0);
        assert_eq!(idx.total_len(), 3);
    }

    #[test]
    fn swap_remove_keeps_positions_consistent() {
        let schema = arith_schema();
        let mut idx = LabelIndex::new(&schema);
        let constant = schema.expect_label("Const");
        let ids: Vec<NodeId> = (0..10).map(NodeId::from_index).collect();
        for &id in &ids {
            idx.insert(constant, id);
        }
        // Remove from the middle, then the ends.
        idx.remove(constant, ids[4]);
        idx.remove(constant, ids[0]);
        idx.remove(constant, ids[9]);
        assert_eq!(idx.len(constant), 7);
        for &id in &[ids[1], ids[5], ids[8]] {
            assert!(idx.nodes(constant).contains(&id));
        }
        for &id in &[ids[0], ids[4], ids[9]] {
            assert!(!idx.nodes(constant).contains(&id));
        }
    }

    #[test]
    #[should_panic(expected = "unindexed")]
    fn remove_of_missing_node_panics() {
        let schema = arith_schema();
        let mut idx = LabelIndex::new(&schema);
        idx.remove(schema.expect_label("Const"), NodeId::from_index(1));
    }

    #[test]
    fn filtered_lookup_skips_dead_candidates() {
        // Two AddZero sites; filtering the first one out must surface
        // the second, and filtering both must miss.
        let (ast, root) = tree(
            r#"(Arith op="*" (Arith op="+" (Const val=0) (Var name="a")) (Arith op="+" (Const val=0) (Var name="b")))"#,
        );
        let idx = LabelIndex::build_from(&ast, root);
        let q = add_zero(&ast);
        let first = ast.children(root)[0];
        let second = ast.children(root)[1];
        let (got, _) = idx.index_lookup_where(&ast, &q, |_, n| n != first).unwrap();
        assert_eq!(got, second);
        assert!(idx
            .index_lookup_where(&ast, &q, |_, n| n != first && n != second)
            .is_none());
    }

    #[test]
    fn lookup_all_agrees_with_naive_matcher() {
        let (ast, root) =
            tree(r#"(Arith op="+" (Arith op="+" (Const val=0) (Var name="a")) (Var name="b"))"#);
        let idx = LabelIndex::build_from(&ast, root);
        let q = add_zero(&ast);
        let mut via_index = idx.index_lookup_all(&ast, &q);
        let mut naive = tt_pattern::match_set(&ast, root, &q);
        via_index.sort();
        naive.sort();
        assert_eq!(via_index, naive);
    }

    #[test]
    fn memory_accounting_nonzero_after_build() {
        let (ast, root) = tree(r#"(Arith op="*" (Const val=2) (Var name="y"))"#);
        let idx = LabelIndex::build_from(&ast, root);
        assert!(idx.memory_bytes() > 0);
    }
}
