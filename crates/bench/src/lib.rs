//! Shared experiment drivers for the per-figure benchmark harnesses.
//!
//! Every figure of the paper's evaluation has a bench target (see
//! `benches/`); they share the JITD/YCSB experiment loop defined here.
//! Scale knobs come from the environment so `cargo bench` stays quick by
//! default while EXPERIMENTS.md documents the larger runs:
//!
//! | variable            | default | meaning                             |
//! |---------------------|---------|-------------------------------------|
//! | `TT_RECORDS`        | 20000   | preloaded keys per run              |
//! | `TT_OPS`            | 1000    | YCSB operations per run             |
//! | `TT_CRACK_THRESHOLD`| 64      | CrackArray eligibility bound        |
//! | `TT_SEED`           | 42      | master RNG seed                     |
//! | `TT_ADAPTIVE_BATCH` | 0       | auto-tune K from cancellation rates |
//! | `TT_ASYNC_COMMIT`   | 0       | pipeline epoch commits (seal now,   |
//! |                     |         | apply one epoch later)              |
//! | `TT_COMPILED_MATCH` | 1       | match via the rule-set automaton    |
//! |                     |         | (0 = per-rule baseline matcher)     |
//! | `TT_ANTIPATTERN_MAX`| 6       | deepest UNION-doubling level (fig14)|
//! | `TT_ORCA_MAX`       | 5       | deepest level for fig15             |
//! | `TT_FIG1_REPS`      | 3       | repetitions averaged per query      |
//! | `TT_SCALING_REPS`   | 3       | best-of-N reps for fig14/fig15      |

pub mod report;

use std::sync::Arc;

use treetoaster_core::engine::MaintenanceMode;
use treetoaster_core::TreeToasterEngine;
use tt_ast::{Record, TreeId};
use tt_jitd::{
    jitd_schema, scaled_rules, Jitd, JitdFleet, JitdIndex, JitdStats, RuleConfig, StrategyKind,
};
use tt_metrics::{bytes_to_pages, now_ns, statm_resident_pages, Summary, SummaryBuilder};
use tt_ycsb::{FleetSpec, FleetWorkload, Workload, WorkloadSpec};

/// The knob parsing lives in `tt_core`'s [`config`] module
/// ([`EngineConfig::from_env`] is the one place `TT_*` variables are
/// read); the historical `ExperimentConfig` name stays as an alias.
///
/// [`config`]: treetoaster_core::config
/// [`EngineConfig::from_env`]: treetoaster_core::EngineConfig::from_env
pub use treetoaster_core::EngineConfig as ExperimentConfig;
pub use treetoaster_core::{env_u64, EngineConfig, FleetConfig};

/// Adaptive-K policy shared by the epoch drivers: widen the epoch while
/// cancellation keeps absorbing churn, narrow it when staging is pure
/// overhead. Bounds keep K in a sane envelope.
fn tune_batch_size(k: usize, cancellation: Option<(u64, u64)>) -> usize {
    const K_MIN: usize = 1;
    const K_MAX: usize = 1024;
    let Some((staged, canceled)) = cancellation else {
        return k;
    };
    if staged == 0 {
        return k;
    }
    let rate = canceled as f64 / staged as f64;
    if rate > 0.5 {
        (k * 2).min(K_MAX)
    } else if rate < 0.1 {
        (k / 2).max(K_MIN)
    } else {
        k
    }
}

/// The result of one (workload, strategy) run.
pub struct RunResult {
    /// Workload mnemonic.
    pub workload: char,
    /// The strategy measured.
    pub strategy: StrategyKind,
    /// Raw runtime samples.
    pub stats: JitdStats,
    /// Per-rule search-latency summaries (Figure 9).
    pub search: Vec<Option<Summary>>,
    /// Per-rule total (search + rewrite + maintenance) summaries (Fig 10).
    pub total: Vec<Option<Summary>>,
    /// Pooled maintenance-operation latency (Figure 12).
    pub ivm: Option<Summary>,
    /// Strategy structure memory, in 4 KiB pages (Figures 11, 13).
    pub memory_pages: usize,
    /// The AST's own memory, pages (the baseline all strategies share).
    pub ast_pages: usize,
    /// Whole-process resident pages (`/proc` cross-check).
    pub statm_pages: Option<u64>,
    /// Rewrites applied during the run.
    pub rewrites: u64,
}

impl RunResult {
    /// Mean of per-rule mean search latencies (ns).
    pub fn mean_search_ns(&self) -> f64 {
        mean_of(&self.search)
    }

    /// Mean of per-rule mean total latencies (ns).
    pub fn mean_total_ns(&self) -> f64 {
        mean_of(&self.total)
    }
}

fn mean_of(summaries: &[Option<Summary>]) -> f64 {
    let means: Vec<f64> = summaries.iter().flatten().map(|s| s.mean).collect();
    if means.is_empty() {
        0.0
    } else {
        means.iter().sum::<f64>() / means.len() as f64
    }
}

/// Runs one YCSB workload against one strategy: preload, then interleave
/// each operation with one reorganization round (the paper's background
/// reorganizer, serialized for apples-to-apples measurement — Figure 8's
/// evaluation module).
pub fn run_jitd(workload: char, strategy: StrategyKind, cfg: ExperimentConfig) -> RunResult {
    let records: Vec<Record> = (0..cfg.records as i64)
        .map(|k| Record::new(k, k.wrapping_mul(7)))
        .collect();
    let mut jitd = Jitd::new(
        strategy,
        RuleConfig {
            crack_threshold: cfg.crack_threshold,
        },
        records,
    );
    let mut driver = Workload::new(WorkloadSpec::standard(workload), cfg.records, cfg.seed);
    // Initial organization burst: crack the loaded array (every strategy
    // pays its own search costs here, as in the paper's load phase).
    jitd.reorganize_until_quiet(u64::MAX);
    for _ in 0..cfg.ops {
        let op = driver.next_op();
        jitd.execute(&op);
        jitd.reorganize_round();
    }

    let rules = jitd.rules().clone();
    let search: Vec<Option<Summary>> = jitd.stats.search_ns.iter().map(|b| b.finish()).collect();
    let total: Vec<Option<Summary>> = (0..rules.len())
        .map(|rid| {
            // Per applied step: search + rewrite + maintenance. Rewrite
            // and maintenance sample streams are aligned (one per applied
            // step); search has extra samples for empty finds, summarized
            // by its own mean.
            let rewrites = &jitd.stats.rewrite_ns[rid];
            let maintains = &jitd.stats.maintain_ns[rid];
            let search_mean = jitd.stats.search_ns[rid].finish().map_or(0.0, |s| s.mean);
            let mut b = SummaryBuilder::with_capacity(rewrites.len());
            for (r, m) in rewrites.samples().iter().zip(maintains.samples()) {
                b.push(search_mean + r + m);
            }
            b.finish()
        })
        .collect();
    let ivm = jitd.stats.all_maintenance_samples().finish();
    let memory_pages = bytes_to_pages(jitd.strategy_memory_bytes());
    let ast_pages = bytes_to_pages(jitd.ast_memory_bytes());
    let rewrites = jitd.stats.steps;
    RunResult {
        workload,
        strategy,
        stats: jitd.stats,
        search,
        total,
        ivm,
        memory_pages,
        ast_pages,
        statm_pages: statm_resident_pages(),
        rewrites,
    }
}

/// The reported matcher-axis label for a compiled-match flag.
pub fn matcher_label(compiled: bool) -> &'static str {
    if compiled {
        "compiled"
    } else {
        "per-rule"
    }
}

/// Element-wise `after - before` for the per-rule hit counters, so a
/// cell reports only the measured loop's attribution (the load-phase
/// organization runs before the clock starts).
fn counter_delta(after: &[u64], before: &[u64]) -> Vec<u64> {
    after.iter().zip(before).map(|(a, b)| a - b).collect()
}

/// The result of one batched (workload, strategy, batch-size) run.
#[derive(Debug, Clone)]
pub struct BatchRunResult {
    /// Workload mnemonic.
    pub workload: char,
    /// The strategy measured.
    pub strategy: StrategyKind,
    /// Operations per maintenance epoch (`usize::MAX` = one epoch).
    /// Under adaptive sizing this is the *starting* K.
    pub batch_size: usize,
    /// Ops-per-epoch after the last adaptive adjustment (equals
    /// `batch_size` on the fixed-K path).
    pub final_batch_size: usize,
    /// Trees in the fleet (1 for the single-tree workloads A–F).
    pub trees: usize,
    /// YCSB operations executed.
    pub ops: usize,
    /// Rewrites applied across all epochs.
    pub rewrites: u64,
    /// Wall time of the measured epoch loop.
    pub total_ns: u64,
    /// Mean per-rewrite maintenance latency (staging side).
    pub maintain_mean_ns: f64,
    /// Mean batch-commit latency.
    pub commit_mean_ns: f64,
    /// Largest strategy memory observed at an epoch commit.
    pub peak_strategy_bytes: usize,
    /// Strategy memory after the final commit.
    pub final_strategy_bytes: usize,
    /// Which reorganization deployment produced this cell: `"sync"`
    /// (the measured loop reorganizes inline — every A–F/G/H cell),
    /// `"dedicated"` (one background worker per shard), or `"steal"`
    /// (a work-stealing pool draining the shared queue).
    pub scheduler: &'static str,
    /// Background worker threads (0 for `"sync"` cells).
    pub workers: usize,
    /// Scheduler queue-jumps / non-home drains (see
    /// [`tt_jitd::JitdStats::steal_count`]).
    pub steal_count: u64,
    /// Failed try-lock claims that requeued the work item.
    pub contended_count: u64,
    /// Which commit pipeline closed this cell's epochs: `"sync"` (apply
    /// inline at epoch close — the classic path) or `"async"` (seal at
    /// epoch close, apply off the op path: one epoch later on the
    /// single-threaded drivers, on the background committer thread in
    /// [`run_commit_pipeline`]).
    pub commit: &'static str,
    /// Largest single **commit window** observed (ns): the stall from
    /// epoch close (after the epoch's ops and reorganization, which are
    /// identical across commit disciplines) until the op thread is free
    /// to run the next op — the inline apply for `commit: "sync"`, the
    /// O(1) seal for `"async"`. The tail-latency axis the async commit
    /// pipeline targets: ns/op averages the apply cost away, the worst
    /// window shows it. 0 for drivers without an epoch structure
    /// ([`run_steal_pool`]'s clock has no epochs). [`run_service`]
    /// repurposes it as the slowest single daemon op observed (its
    /// worst-window tail).
    pub worst_window_ns: u64,
    /// Which harness produced this cell: `"library"` (the in-process
    /// drivers above) or `"service"` (the `tt-serve` daemon driven
    /// through [`run_service`]). Pre-service artifacts omit the field,
    /// which readers treat as `"library"`.
    pub mode: &'static str,
    /// Concurrent daemon sessions (0 for library cells).
    pub sessions: usize,
    /// 99th-percentile per-op daemon latency (0 for library cells,
    /// whose single-threaded loops have no per-op distribution worth
    /// publishing).
    pub p99_ns: u64,
    /// Which matcher searched for rewrite sites: `"compiled"` (the rule
    /// set's label-discriminated match automaton — the default) or
    /// `"per-rule"` (one pattern evaluation per rule, the
    /// differential-testing baseline). Pre-automaton artifacts omit the
    /// field, which readers treat as `"compiled"`.
    pub matcher: &'static str,
    /// Synthetic probe rules added by the rule-scale sweep (0 for every
    /// cell running the paper's stock rule set — including all
    /// pre-automaton artifacts, which omit the field).
    pub rule_count: usize,
    /// Matches found per rule id over the measured loop (empty when the
    /// driver cannot attribute per-rule counts, e.g. the daemon cells).
    pub rule_matches: Vec<u64>,
    /// Rewrites applied per rule id over the measured loop.
    pub rule_rewrites: Vec<u64>,
}

impl BatchRunResult {
    /// Nanoseconds per YCSB operation (reorganization included).
    pub fn ns_per_op(&self) -> f64 {
        self.total_ns as f64 / self.ops.max(1) as f64
    }

    /// Sustained operations per second over the measured wall time —
    /// the service harness's headline number (for the single-threaded
    /// library drivers it is just `1e9 / ns_per_op`).
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 * 1e9 / self.total_ns.max(1) as f64
    }

    /// Nanoseconds per applied rewrite.
    pub fn ns_per_rewrite(&self) -> f64 {
        self.total_ns as f64 / self.rewrites.max(1) as f64
    }
}

/// Runs one YCSB workload against one strategy with **epoch-batched**
/// maintenance: the op stream is consumed in chunks of `batch_size`;
/// each chunk executes inside one maintenance epoch together with a full
/// reorganization burst, then commits. `batch_size = 1` is the paper's
/// per-rewrite regime; larger sizes let overlapping deltas cancel in the
/// strategies' buffers before touching views/indexes.
pub fn run_jitd_batched(
    workload: char,
    strategy: StrategyKind,
    cfg: ExperimentConfig,
    batch_size: usize,
) -> BatchRunResult {
    assert!(batch_size > 0, "batch size must be positive");
    let records: Vec<Record> = (0..cfg.records as i64)
        .map(|k| Record::new(k, k.wrapping_mul(7)))
        .collect();
    let mut jitd = Jitd::with_matcher(
        strategy,
        RuleConfig {
            crack_threshold: cfg.crack_threshold,
        },
        records,
        cfg.compiled_match,
    );
    let mut driver = Workload::new(WorkloadSpec::standard(workload), cfg.records, cfg.seed);
    // Load-phase organization happens outside the measured loop (all
    // strategies pay it identically; it has no batching axis to compare).
    jitd.reorganize_until_quiet(u64::MAX);

    let mut peak = jitd.strategy_memory_bytes();
    let steps_before = jitd.stats.steps;
    let matches_before = jitd.stats.rule_matches.clone();
    let rewrites_before = jitd.stats.rule_rewrites.clone();
    let mut worst_window_ns = 0u64;
    let t0 = now_ns();
    let mut done = 0usize;
    let mut k = batch_size;
    while done < cfg.ops {
        let chunk = k.min(cfg.ops - done);
        jitd.begin_batch();
        for _ in 0..chunk {
            let op = driver.next_op();
            jitd.execute(&op);
        }
        jitd.reorganize_until_quiet(u64::MAX);
        // Sample while the epoch's staged buffers are still live — their
        // footprint is exactly what the batch-size axis trades away —
        // and again after the commit drains them into the views.
        peak = peak.max(jitd.strategy_memory_bytes());
        // The commit window (see `BatchRunResult::worst_window_ns`):
        // only the epoch-close stall, not the ops/reorganization above.
        let w_close = now_ns();
        if cfg.async_commit {
            // Seal only; the previous epoch's sealed deltas were applied
            // by this submit's backpressure, so applies run one epoch
            // behind the stream.
            jitd.submit_commit();
        } else {
            jitd.commit_batch();
        }
        done += chunk;
        worst_window_ns = worst_window_ns.max(now_ns() - w_close);
        peak = peak.max(jitd.strategy_memory_bytes());
        if cfg.adaptive_batch {
            // The counters describe the epoch just committed; tune the
            // next epoch's width from its cancellation rate.
            k = tune_batch_size(k, jitd.batch_cancellation());
        }
    }
    if cfg.async_commit {
        // Land the final sealed epoch inside the measured wall time —
        // the pipelined run owes the same total work.
        jitd.apply_submitted();
    }
    let total_ns = now_ns() - t0;

    let maintain_mean_ns = jitd
        .stats
        .all_maintenance_samples()
        .finish()
        .map_or(0.0, |s| s.mean);
    let commit_mean_ns = jitd.stats.commit_ns.finish().map_or(0.0, |s| s.mean);
    BatchRunResult {
        workload,
        strategy,
        batch_size,
        final_batch_size: k,
        trees: 1,
        ops: cfg.ops,
        rewrites: jitd.stats.steps - steps_before,
        total_ns,
        maintain_mean_ns,
        commit_mean_ns,
        peak_strategy_bytes: peak,
        final_strategy_bytes: jitd.strategy_memory_bytes(),
        scheduler: "sync",
        workers: 0,
        steal_count: 0,
        contended_count: 0,
        commit: if cfg.async_commit { "async" } else { "sync" },
        worst_window_ns,
        mode: "library",
        sessions: 0,
        p99_ns: 0,
        matcher: matcher_label(cfg.compiled_match),
        rule_count: 0,
        rule_matches: counter_delta(&jitd.stats.rule_matches, &matches_before),
        rule_rewrites: counter_delta(&jitd.stats.rule_rewrites, &rewrites_before),
    }
}

/// Runs the **rule-scale** experiment: the paper's rule set padded with
/// `rule_count` synthetic probe rules ([`scaled_rules`] — structurally
/// uniform `BinTree(Array, Array)` probes whose negative-sentinel
/// constraints never fire, so the tree evolves identically at every
/// scale), measured through the TreeToaster strategy's **generic**
/// maintenance mode. Generic mode re-derives the maximal search set by
/// walking rewritten subtrees against the *whole* rule set — the one
/// maintenance path whose cost scales with R — so the cell isolates
/// what the compiled automaton buys: one discrimination-tree walk per
/// node versus one pattern evaluation per rule per node. Workload `'A'`
/// runs the single-tree YCSB stream; `'G'` runs the fleet stream pinned
/// to one tree so the op mix matches the fleet cells.
pub fn run_rule_scale(
    workload: char,
    cfg: ExperimentConfig,
    batch_size: usize,
    rule_count: usize,
    compiled: bool,
) -> BatchRunResult {
    assert!(batch_size > 0, "batch size must be positive");
    let schema = jitd_schema();
    let rules = Arc::new(scaled_rules(
        &schema,
        RuleConfig {
            crack_threshold: cfg.crack_threshold,
        },
        rule_count,
    ));
    let records: Vec<Record> = (0..cfg.records as i64)
        .map(|k| Record::new(k, k.wrapping_mul(7)))
        .collect();
    let strategy = Box::new(
        TreeToasterEngine::with_mode(rules.clone(), MaintenanceMode::Generic)
            .compiled_match(compiled),
    );
    let mut jitd = Jitd::from_strategy(
        StrategyKind::TreeToaster,
        rules,
        JitdIndex::load(records),
        compiled,
        strategy,
    );
    enum Driver {
        Single(Workload),
        Fleet(FleetWorkload),
    }
    let mut driver = match workload {
        'G' | 'H' | 'I' => Driver::Fleet(FleetWorkload::new(
            FleetSpec::standard(workload, 1),
            cfg.records,
            cfg.seed,
        )),
        _ => Driver::Single(Workload::new(
            WorkloadSpec::standard(workload),
            cfg.records,
            cfg.seed,
        )),
    };
    // Load-phase organization outside the measured loop, as in
    // [`run_jitd_batched`].
    jitd.reorganize_until_quiet(u64::MAX);

    let mut peak = jitd.strategy_memory_bytes();
    let steps_before = jitd.stats.steps;
    let matches_before = jitd.stats.rule_matches.clone();
    let rewrites_before = jitd.stats.rule_rewrites.clone();
    let mut worst_window_ns = 0u64;
    let t0 = now_ns();
    let mut done = 0usize;
    while done < cfg.ops {
        let chunk = batch_size.min(cfg.ops - done);
        jitd.begin_batch();
        for _ in 0..chunk {
            let op = match &mut driver {
                Driver::Single(w) => w.next_op(),
                Driver::Fleet(w) => w.next_op().op,
            };
            jitd.execute(&op);
        }
        jitd.reorganize_until_quiet(u64::MAX);
        peak = peak.max(jitd.strategy_memory_bytes());
        let w_close = now_ns();
        jitd.commit_batch();
        done += chunk;
        worst_window_ns = worst_window_ns.max(now_ns() - w_close);
        peak = peak.max(jitd.strategy_memory_bytes());
    }
    let total_ns = now_ns() - t0;

    let maintain_mean_ns = jitd
        .stats
        .all_maintenance_samples()
        .finish()
        .map_or(0.0, |s| s.mean);
    let commit_mean_ns = jitd.stats.commit_ns.finish().map_or(0.0, |s| s.mean);
    BatchRunResult {
        workload,
        strategy: StrategyKind::TreeToaster,
        batch_size,
        final_batch_size: batch_size,
        trees: 1,
        ops: cfg.ops,
        rewrites: jitd.stats.steps - steps_before,
        total_ns,
        maintain_mean_ns,
        commit_mean_ns,
        peak_strategy_bytes: peak,
        final_strategy_bytes: jitd.strategy_memory_bytes(),
        scheduler: "sync",
        workers: 0,
        steal_count: 0,
        contended_count: 0,
        commit: "sync",
        worst_window_ns,
        mode: "library",
        sessions: 0,
        p99_ns: 0,
        matcher: matcher_label(compiled),
        rule_count,
        rule_matches: counter_delta(&jitd.stats.rule_matches, &matches_before),
        rule_rewrites: counter_delta(&jitd.stats.rule_rewrites, &rewrites_before),
    }
}

/// Runs one **fleet** workload (G or H) against one strategy with
/// per-tree epoch-batched maintenance. The fleet holds `trees` shards;
/// the preload is split evenly so total state matches a single-tree run
/// at the same `cfg.records`. Each epoch consumes `batch_size` ops from
/// the fleet stream; only the shards the epoch actually touched open an
/// epoch, reorganize, and commit — untouched plans pay nothing, which is
/// exactly the isolation the tree-count axis measures.
pub fn run_fleet_batched(
    workload: char,
    strategy: StrategyKind,
    cfg: ExperimentConfig,
    batch_size: usize,
    trees: usize,
) -> BatchRunResult {
    assert!(batch_size > 0, "batch size must be positive");
    assert!(trees > 0, "fleet needs at least one tree");
    let records_per_tree = (cfg.records / trees as u64).max(32);
    let mut fleet = JitdFleet::with_matcher(
        strategy,
        RuleConfig {
            crack_threshold: cfg.crack_threshold,
        },
        trees,
        |t| {
            (0..records_per_tree as i64)
                .map(|k| Record::new(k, k.wrapping_mul(7) ^ t as i64))
                .collect()
        },
        cfg.compiled_match,
    );
    let mut driver = FleetWorkload::new(
        FleetSpec::standard(workload, trees),
        records_per_tree,
        cfg.seed,
    );
    // Load-phase organization per shard, outside the measured loop.
    for t in fleet.tree_ids().collect::<Vec<TreeId>>() {
        fleet.reorganize_until_quiet(t, u64::MAX);
    }

    let mut peak = fleet.strategy_memory_bytes();
    let steps_before = fleet.stats.steps;
    let matches_before = fleet.stats.rule_matches.clone();
    let rewrites_before = fleet.stats.rule_rewrites.clone();
    let mut worst_window_ns = 0u64;
    let t0 = now_ns();
    let mut done = 0usize;
    let mut k = batch_size;
    let mut touched: Vec<TreeId> = Vec::new();
    let mut in_epoch = vec![false; trees];
    while done < cfg.ops {
        if cfg.async_commit {
            // One epoch lags in the pipeline: the previous epoch's
            // sealed deltas land only now, before the next epoch opens.
            fleet.drain_commits();
        }
        let chunk = k.min(cfg.ops - done);
        touched.clear();
        in_epoch.iter_mut().for_each(|b| *b = false);
        for _ in 0..chunk {
            let fop = driver.next_op();
            let tree = TreeId::from_index(fop.tree as u32);
            if !in_epoch[fop.tree] {
                in_epoch[fop.tree] = true;
                touched.push(tree);
                fleet.begin_batch(tree);
            }
            fleet.execute(tree, &fop.op);
        }
        // Drain the epoch's backlog hottest-first through the fleet's
        // heat scheduler (structurally identical to per-tree draining —
        // the steal-equivalence suite pins that — but it exercises and
        // counts the priority scheduling the pooled cells measure).
        fleet.reorganize_pending(u64::MAX);
        peak = peak.max(fleet.strategy_memory_bytes());
        // The commit window (see `BatchRunResult::worst_window_ns`):
        // only the epoch-close stall, not the ops/reorganization above.
        let w_close = now_ns();
        for &tree in &touched {
            if cfg.async_commit {
                fleet.submit_commit(tree);
            } else {
                fleet.commit_batch(tree);
            }
        }
        done += chunk;
        worst_window_ns = worst_window_ns.max(now_ns() - w_close);
        peak = peak.max(fleet.strategy_memory_bytes());
        if cfg.adaptive_batch {
            // Sum only the shards this epoch touched: untouched shards
            // still report their *last* epoch's counters, which would
            // let stale churn drive the tuning.
            let mut any = false;
            let (mut staged, mut canceled) = (0u64, 0u64);
            for &tree in &touched {
                if let Some((s, c)) = fleet.batch_cancellation(tree) {
                    any = true;
                    staged += s;
                    canceled += c;
                }
            }
            k = tune_batch_size(k, any.then_some((staged, canceled)));
        }
    }
    if cfg.async_commit {
        // Land the in-flight epochs inside the measured wall time.
        fleet.drain_commits();
    }
    let total_ns = now_ns() - t0;

    let maintain_mean_ns = fleet
        .stats
        .all_maintenance_samples()
        .finish()
        .map_or(0.0, |s| s.mean);
    let commit_mean_ns = fleet.stats.commit_ns.finish().map_or(0.0, |s| s.mean);
    BatchRunResult {
        workload,
        strategy,
        batch_size,
        final_batch_size: k,
        trees,
        ops: cfg.ops,
        rewrites: fleet.stats.steps - steps_before,
        total_ns,
        maintain_mean_ns,
        commit_mean_ns,
        peak_strategy_bytes: peak,
        final_strategy_bytes: fleet.strategy_memory_bytes(),
        scheduler: "sync",
        workers: 0,
        steal_count: fleet.stats.steal_count,
        contended_count: fleet.stats.contended_count,
        commit: if cfg.async_commit { "async" } else { "sync" },
        worst_window_ns,
        mode: "library",
        sessions: 0,
        p99_ns: 0,
        matcher: matcher_label(cfg.compiled_match),
        rule_count: 0,
        rule_matches: counter_delta(&fleet.stats.rule_matches, &matches_before),
        rule_rewrites: counter_delta(&fleet.stats.rule_rewrites, &rewrites_before),
    }
}

/// Runs fleet workload `workload` against a **threaded** reorganizer
/// deployment: one [`tt_jitd::Jitd`] shard per tree behind its own
/// mutex, background workers racing the op stream. `workers: None` is
/// the dedicated baseline (one pinned worker per shard, PR 4's model);
/// `Some(w)` runs a work-stealing pool of `w` threads over the shared
/// queue. The measured quantity is the wall time of the op loop — the
/// driver contends with the reorganizers on the per-shard locks, so a
/// deployment that wastes threads on cold shards (dedicated, under the
/// skewed workload I) pays for it here. Initial cracking happens before
/// the clock starts, identically for both deployments.
pub fn run_steal_pool(
    workload: char,
    strategy: StrategyKind,
    cfg: ExperimentConfig,
    trees: usize,
    workers: Option<usize>,
) -> BatchRunResult {
    use tt_jitd::{AsyncJitd, StealConfig, WorkerMode};
    assert!(trees > 0, "pool needs at least one shard");
    // Floor the per-shard preload at twice the crack threshold: a shard
    // whose array can never crack generates no reorganization backlog,
    // and a backlog is the entire point of a scheduler cell.
    let records_per_tree = (cfg.records / trees as u64)
        .max(2 * cfg.crack_threshold as u64)
        .max(32);
    let parts: Vec<Vec<Record>> = (0..trees)
        .map(|t| {
            (0..records_per_tree as i64)
                .map(|k| Record::new(k, k.wrapping_mul(7) ^ t as i64))
                .collect()
        })
        .collect();
    let mode = match workers {
        None => WorkerMode::Dedicated,
        Some(w) => WorkerMode::Stealing(StealConfig {
            workers: w,
            heat_threshold: 1,
        }),
    };
    let pool = AsyncJitd::spawn_parts(
        strategy,
        RuleConfig {
            crack_threshold: cfg.crack_threshold,
        },
        parts,
        mode,
    );
    // Load-phase organization outside the measured loop: the driver
    // cracks every shard synchronously so both deployments start the
    // clock from the same quiescent fleet.
    for shard in 0..trees {
        pool.with_shard(shard, |j| j.reorganize_until_quiet(u64::MAX));
    }
    let steps_before: u64 = (0..trees)
        .map(|s| pool.with_shard(s, |j| j.stats.steps))
        .sum();
    let rewrites_before: Vec<Vec<u64>> = (0..trees)
        .map(|s| pool.with_shard(s, |j| j.stats.rule_rewrites.clone()))
        .collect();
    let matches_before: Vec<Vec<u64>> = (0..trees)
        .map(|s| pool.with_shard(s, |j| j.stats.rule_matches.clone()))
        .collect();

    let mut driver = FleetWorkload::new(
        FleetSpec::standard(workload, trees),
        records_per_tree,
        cfg.seed,
    );
    let t0 = now_ns();
    for _ in 0..cfg.ops {
        let fop = driver.next_op();
        pool.execute_on(fop.tree, &fop.op);
    }
    // The cell is end-to-end burst completion: keep the clock running
    // until the background has drained every shard's backlog. The two
    // deployments owe identical rewrite work (same per-shard streams),
    // so the cell isolates *scheduling* efficiency — a deployment that
    // parks threads on cold shards while the hot minority's backlog
    // waits pays for it right here. The probe claims shards with a
    // try-lock and treats a busy shard as not-quiet, so the observer
    // never queues behind a worker and never pollutes the pool's
    // contention ledger; the short sleep between sweeps hands the core
    // to the workers (essential on small machines) and adds at most one
    // sweep period to a drain that is orders of magnitude longer.
    loop {
        let mut quiet = true;
        for shard in 0..trees {
            match pool.try_with_shard(shard, |j| j.has_pending_matches()) {
                Some(false) => {}
                // Pending matches, or a worker holds the shard (it is
                // mid-round, so not provably quiescent).
                Some(true) | None => quiet = false,
            }
        }
        // A fleet can be out of matches while the committer still holds
        // sealed-but-unapplied epochs; in-flight commits are backlog too.
        if pool.commits_pending() {
            quiet = false;
        }
        if quiet {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(20));
    }
    let total_ns = now_ns() - t0;

    let steal = pool.steal_stats();
    let (mut runtimes, _) = pool.stop();
    let steps_after: u64 = runtimes.iter().map(|j| j.stats.steps).sum();
    let (rule_matches, rule_rewrites) =
        sum_rule_counters(&runtimes, &matches_before, &rewrites_before);
    let mut maintenance = SummaryBuilder::new();
    for jitd in &runtimes {
        for s in jitd.stats.all_maintenance_samples().samples() {
            maintenance.push(*s);
        }
    }
    // Post-measurement: drain leftovers so the reported memory describes
    // a quiescent fleet, comparable across the two *deployments*. It is
    // NOT comparable to sync cells' peak_bytes — those sample mid-epoch
    // maxima, while live sampling across worker threads would need
    // instrumentation the measured loop shouldn't pay for; pool cells
    // therefore report peak == final (documented in docs/benching.md).
    for jitd in &mut runtimes {
        jitd.reorganize_until_quiet(u64::MAX);
    }
    let final_bytes: usize = runtimes.iter().map(Jitd::strategy_memory_bytes).sum();
    BatchRunResult {
        workload,
        strategy,
        batch_size: 1,
        final_batch_size: 1,
        trees,
        ops: cfg.ops,
        rewrites: steps_after - steps_before,
        total_ns,
        maintain_mean_ns: maintenance.finish().map_or(0.0, |s| s.mean),
        commit_mean_ns: 0.0,
        peak_strategy_bytes: final_bytes,
        final_strategy_bytes: final_bytes,
        scheduler: if workers.is_some() {
            "steal"
        } else {
            "dedicated"
        },
        workers: workers.unwrap_or(trees),
        steal_count: steal.steal_count,
        contended_count: steal.contended_count,
        commit: "sync",
        worst_window_ns: 0,
        mode: "library",
        sessions: 0,
        p99_ns: 0,
        matcher: "compiled",
        rule_count: 0,
        rule_matches,
        rule_rewrites,
    }
}

/// Per-rule counters for the threaded drivers: the measured window's
/// `after - before` delta, summed across shards.
fn sum_rule_counters(
    runtimes: &[Jitd],
    matches_before: &[Vec<u64>],
    rewrites_before: &[Vec<u64>],
) -> (Vec<u64>, Vec<u64>) {
    let rules = runtimes.first().map_or(0, |j| j.rules().len());
    let mut matches = vec![0u64; rules];
    let mut rewrites = vec![0u64; rules];
    for (s, jitd) in runtimes.iter().enumerate() {
        for (acc, d) in matches
            .iter_mut()
            .zip(counter_delta(&jitd.stats.rule_matches, &matches_before[s]))
        {
            *acc += d;
        }
        for (acc, d) in rewrites.iter_mut().zip(counter_delta(
            &jitd.stats.rule_rewrites,
            &rewrites_before[s],
        )) {
            *acc += d;
        }
    }
    (matches, rewrites)
}

/// Runs one fleet workload through the **commit pipeline** cell: epochs
/// close mid-backlog (one reorganization round per touched shard, on the
/// op thread) and the `async_commit` axis decides who pays the apply —
/// the op thread inline at epoch close (`commit = "sync"`), or a
/// background committer thread the seal merely wakes (`commit =
/// "async"`). Everything else is identical between the twins: same
/// shards, same op stream, same on-thread reorganization, same one cold
/// pool worker (its heat threshold is `u64::MAX`, so it parks for the
/// whole run and the scheduler axis stays honestly `"sync"` — zero
/// reorganizer threads run). The headline metric is `worst_window_ns`,
/// the slowest **commit window**: the stall from epoch close until the
/// op thread is free to run the next op. For the sync twin that window
/// contains the inline apply (it grows with the epoch's delta payload);
/// for the async twin it is the O(1) seal-and-wake, which is the entire
/// point of moving commits off the query path. The ops and
/// reorganization rounds are deliberately outside the window — they are
/// identical between the twins and only dilute the tail with
/// scaffolding noise — but end-to-end ns/op still covers them. The
/// clock still runs until every in-flight epoch has landed
/// ([`tt_jitd::AsyncJitd::drain_commits`], a help-at-barrier: the op thread
/// applies whatever the committer has not reached rather than charging
/// a committer wake latency to its own clock), so ns/op stays an
/// end-to-end number and the async twin cannot win by leaving work
/// behind.
///
/// Epochs must *not* reorganize to quiescence here: a drained backlog
/// stages and cancels every view delta, net-empty buffers seal nothing,
/// and the committer would have nothing to overlap (see
/// docs/commit-pipeline.md). The leftover backlog drains after the
/// clock stops, identically for both twins.
/// Reorganization rounds per touched shard per commit-pipeline epoch.
/// Deep enough that each seal carries a real delta payload (the apply
/// the async twin moves off the window), shallow enough that the epoch
/// stays mid-backlog — quiescence would cancel every delta and seal
/// nothing.
pub const COMMIT_EPOCH_ROUNDS: usize = 4;

pub fn run_commit_pipeline(
    workload: char,
    strategy: StrategyKind,
    cfg: ExperimentConfig,
    batch_size: usize,
    trees: usize,
    async_commit: bool,
) -> BatchRunResult {
    use tt_jitd::{AsyncJitd, CommitMode, StealConfig, WorkerMode};
    assert!(batch_size > 0, "batch size must be positive");
    assert!(trees > 0, "pipeline needs at least one shard");
    let records_per_tree = (cfg.records / trees as u64)
        .max(2 * cfg.crack_threshold as u64)
        .max(32);
    let parts: Vec<Vec<Record>> = (0..trees)
        .map(|t| {
            (0..records_per_tree as i64)
                .map(|k| Record::new(k, k.wrapping_mul(7) ^ t as i64))
                .collect()
        })
        .collect();
    let pool = AsyncJitd::spawn_parts_with(
        strategy,
        RuleConfig {
            crack_threshold: cfg.crack_threshold,
        },
        parts,
        WorkerMode::Stealing(StealConfig {
            workers: 1,
            heat_threshold: u64::MAX,
        }),
        if async_commit {
            CommitMode::Async
        } else {
            CommitMode::Sync
        },
    );
    // Load-phase cracking outside the measured loop, as everywhere.
    for shard in 0..trees {
        pool.with_shard(shard, |j| j.reorganize_until_quiet(u64::MAX));
    }
    let steps_before: u64 = (0..trees)
        .map(|s| pool.with_shard(s, |j| j.stats.steps))
        .sum();
    let rewrites_before: Vec<Vec<u64>> = (0..trees)
        .map(|s| pool.with_shard(s, |j| j.stats.rule_rewrites.clone()))
        .collect();
    let matches_before: Vec<Vec<u64>> = (0..trees)
        .map(|s| pool.with_shard(s, |j| j.stats.rule_matches.clone()))
        .collect();

    let mut driver = FleetWorkload::new(
        FleetSpec::standard(workload, trees),
        records_per_tree,
        cfg.seed,
    );
    let mut touched: Vec<usize> = Vec::new();
    let mut in_epoch = vec![false; trees];
    let mut worst_window_ns = 0u64;
    let t0 = now_ns();
    let mut done = 0usize;
    while done < cfg.ops {
        let chunk = batch_size.min(cfg.ops - done);
        touched.clear();
        in_epoch.iter_mut().for_each(|b| *b = false);
        for _ in 0..chunk {
            let fop = driver.next_op();
            if !in_epoch[fop.tree] {
                in_epoch[fop.tree] = true;
                touched.push(fop.tree);
                pool.begin_batch_on(fop.tree);
            }
            pool.execute_on(fop.tree, &fop.op);
        }
        // A few rounds per touched shard: the epoch closes mid-backlog
        // with net deltas to seal, and the backlog carries forward.
        for &shard in &touched {
            pool.with_shard(shard, |j| {
                for _ in 0..COMMIT_EPOCH_ROUNDS {
                    if j.reorganize_round() == 0 {
                        break;
                    }
                }
            });
        }
        // The commit window: from epoch close to the op thread being
        // free to run the next op. This is the stall the pipeline
        // exists to shrink — the ops and reorganization rounds above
        // are identical between the twins (and dominated by cell
        // scaffolding noise), so they are kept out of the tail metric
        // and measured only through end-to-end ns/op.
        let w_close = now_ns();
        for &shard in &touched {
            pool.submit_commit_on(shard);
        }
        done += chunk;
        worst_window_ns = worst_window_ns.max(now_ns() - w_close);
    }
    // End-to-end completion: every in-flight epoch lands before the
    // clock stops. Help-at-barrier instead of sleep-polling
    // `commits_pending`: the op thread applies whatever seals the
    // committer has not reached (first-toucher-applies is safe), so the
    // drain costs the leftover applies — not a committer wake latency
    // plus sleep quantization, which at quick scale dwarfs the run.
    pool.drain_commits();
    let total_ns = now_ns() - t0;

    let (mut runtimes, _) = pool.stop();
    let steps_after: u64 = runtimes.iter().map(|j| j.stats.steps).sum();
    let (rule_matches, rule_rewrites) =
        sum_rule_counters(&runtimes, &matches_before, &rewrites_before);
    let mut maintenance = SummaryBuilder::new();
    let mut commit = SummaryBuilder::new();
    for jitd in &runtimes {
        for s in jitd.stats.all_maintenance_samples().samples() {
            maintenance.push(*s);
        }
        for s in jitd.stats.commit_ns.samples() {
            commit.push(*s);
        }
    }
    // Post-measurement: drain the carried backlog so the reported
    // memory describes a quiescent fleet (same caveat as the pool
    // cells: peak == final).
    for jitd in &mut runtimes {
        jitd.reorganize_until_quiet(u64::MAX);
    }
    let final_bytes: usize = runtimes.iter().map(Jitd::strategy_memory_bytes).sum();
    BatchRunResult {
        workload,
        strategy,
        batch_size,
        final_batch_size: batch_size,
        trees,
        ops: cfg.ops,
        rewrites: steps_after - steps_before,
        total_ns,
        maintain_mean_ns: maintenance.finish().map_or(0.0, |s| s.mean),
        commit_mean_ns: commit.finish().map_or(0.0, |s| s.mean),
        peak_strategy_bytes: final_bytes,
        final_strategy_bytes: final_bytes,
        scheduler: "sync",
        workers: 0,
        steal_count: 0,
        contended_count: 0,
        commit: if async_commit { "async" } else { "sync" },
        worst_window_ns,
        mode: "library",
        sessions: 0,
        p99_ns: 0,
        matcher: "compiled",
        rule_count: 0,
        rule_matches,
        rule_rewrites,
    }
}

/// Runs the **service** cell: a [`tt_service::Daemon`] (the same object
/// `tt-serve` wraps in TCP) under sustained multi-tenant load —
/// `sessions` concurrent sessions, driven by `threads` op threads, each
/// session receiving `cfg.ops` operations (seven replaces to one find)
/// against a `cfg.records`-record tree. The pool runs *hot* (stealing
/// workers live, async committer live): this is the deployment shape the
/// daemon ships with, so the numbers include admission bookkeeping,
/// shard-lock traffic, heat noting, and committer interference.
///
/// The headline metrics are [`BatchRunResult::ops_per_sec`] over the
/// measured wall time and the per-op latency tail: `p99_ns` (99th
/// percentile across every op issued) and `worst_window_ns` (the single
/// slowest op — for the daemon that is a seal that had to apply a stale
/// epoch inline, i.e. the backpressure path). The preload/open phase is
/// not measured; the final drain is not measured.
pub fn run_service(cfg: ExperimentConfig, sessions: usize, threads: usize) -> BatchRunResult {
    use tt_service::{Daemon, Request, Response};
    assert!(sessions > 0 && threads > 0);
    let fleet = FleetConfig::default()
        .engine(cfg)
        .sessions(sessions)
        .workers(2)
        .heat_threshold(1);
    let daemon = Daemon::new(StrategyKind::TreeToaster, fleet);
    for _ in 0..sessions {
        match daemon.handle(&Request::Open {
            records: cfg.records,
            seed: cfg.seed,
        }) {
            Response::Opened { .. } => {}
            other => panic!("service bench open refused: {other:?}"),
        }
    }

    // Measured phase: `threads` op threads share the session space by
    // round-robin striping; each thread records every op's latency.
    let ops_per_session = cfg.ops.max(1);
    let t0 = now_ns();
    let mut lat: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let daemon = &daemon;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(sessions * ops_per_session / threads + 1);
                    for s in (t..sessions).step_by(threads) {
                        let session = s as u32;
                        for j in 0..ops_per_session as i64 {
                            let key = (j.wrapping_mul(2654435761) ^ s as i64)
                                .rem_euclid(cfg.records.max(1) as i64);
                            let req = if j % 8 == 7 {
                                Request::Find { session, key }
                            } else {
                                Request::Replace {
                                    session,
                                    key,
                                    value: j,
                                }
                            };
                            let o0 = now_ns();
                            match daemon.handle(&req) {
                                Response::Replaced | Response::Found { .. } => {}
                                other => panic!("service bench op refused: {other:?}"),
                            }
                            lat.push(now_ns() - o0);
                        }
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total_ns = (now_ns() - t0).max(1);

    let mut all: Vec<u64> = lat.drain(..).flatten().collect();
    all.sort_unstable();
    let ops = all.len();
    let p99_ns = all[(ops * 99) / 100 - 1].max(1);
    let worst_window_ns = *all.last().expect("at least one op ran");

    // Post-measurement accounting sweep, then the clean drain.
    let mut rewrites = 0u64;
    let mut final_bytes = 0usize;
    for s in 0..sessions as u32 {
        if let Response::Snapshotted(snap) = daemon.handle(&Request::Snapshot { session: s }) {
            rewrites += snap.rewrites;
            final_bytes += snap.memory_bytes as usize;
        }
    }
    daemon.drain();

    BatchRunResult {
        workload: 'S',
        strategy: StrategyKind::TreeToaster,
        batch_size: Daemon::MAX_EPOCH_OPS as usize,
        final_batch_size: Daemon::MAX_EPOCH_OPS as usize,
        trees: 1,
        ops,
        rewrites,
        total_ns,
        maintain_mean_ns: 0.0,
        commit_mean_ns: 0.0,
        peak_strategy_bytes: final_bytes,
        final_strategy_bytes: final_bytes,
        scheduler: "steal",
        workers: 2,
        steal_count: 0,
        contended_count: 0,
        commit: "async",
        worst_window_ns,
        mode: "service",
        sessions,
        p99_ns,
        matcher: "compiled",
        rule_count: 0,
        // The daemon owns its runtimes; per-rule attribution isn't
        // surfaced through the snapshot protocol.
        rule_matches: Vec::new(),
        rule_rewrites: Vec::new(),
    }
}

/// The fleet workloads the multi-tree cells report (derived from the
/// `FleetSpec` registry, like [`paper_workloads`] from `WorkloadSpec`).
pub fn fleet_workloads() -> Vec<char> {
    FleetSpec::fleet_set(1).iter().map(|s| s.name).collect()
}

/// The five workloads the paper's figures report.
pub fn paper_workloads() -> Vec<char> {
    WorkloadSpec::paper_set().iter().map(|s| s.name).collect()
}

/// Formats a nanosecond mean for tables.
pub fn ns(x: f64) -> String {
    tt_metrics::table::fmt_f64(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            records: 256,
            ops: 30,
            crack_threshold: 32,
            seed: 7,
            adaptive_batch: false,
            async_commit: false,
            compiled_match: true,
        }
    }

    #[test]
    fn run_jitd_produces_measurements_for_all_strategies() {
        for strategy in StrategyKind::all() {
            let r = run_jitd('A', strategy, tiny());
            assert_eq!(r.workload, 'A');
            assert!(r.rewrites > 0, "{} applied no rewrites", strategy.label());
            assert!(r.search.iter().any(|s| s.is_some()));
            assert!(r.mean_search_ns() >= 0.0);
        }
    }

    #[test]
    fn run_jitd_batched_covers_batch_axis() {
        for batch in [1usize, 8, usize::MAX] {
            let r = run_jitd_batched('A', StrategyKind::TreeToaster, tiny(), batch);
            assert_eq!(r.batch_size, batch);
            assert_eq!(r.ops, 30);
            assert!(r.total_ns > 0);
            assert!(r.ns_per_op() > 0.0);
            assert!(r.peak_strategy_bytes >= r.final_strategy_bytes);
        }
    }

    #[test]
    fn run_jitd_batched_surfaces_rule_attribution_for_both_matchers() {
        let compiled = run_jitd_batched('A', StrategyKind::TreeToaster, tiny(), 8);
        let per_rule = run_jitd_batched(
            'A',
            StrategyKind::TreeToaster,
            ExperimentConfig {
                compiled_match: false,
                ..tiny()
            },
            8,
        );
        assert_eq!(compiled.matcher, "compiled");
        assert_eq!(per_rule.matcher, "per-rule");
        assert_eq!(compiled.rule_count, 0);
        // Five paper rules, attribution summing to the applied rewrites.
        assert_eq!(compiled.rule_rewrites.len(), 5);
        assert_eq!(
            compiled.rule_rewrites.iter().sum::<u64>(),
            compiled.rewrites
        );
        // Both matchers drive the identical deterministic run.
        assert_eq!(compiled.rewrites, per_rule.rewrites);
        assert_eq!(compiled.rule_rewrites, per_rule.rule_rewrites);
        assert_eq!(compiled.rule_matches, per_rule.rule_matches);
    }

    #[test]
    fn run_rule_scale_pads_probes_that_never_fire() {
        for workload in ['A', 'G'] {
            let compiled = run_rule_scale(workload, tiny(), 8, 4, true);
            let per_rule = run_rule_scale(workload, tiny(), 8, 4, false);
            assert_eq!(compiled.workload, workload);
            assert_eq!(compiled.rule_count, 4);
            assert_eq!(compiled.matcher, "compiled");
            assert_eq!(per_rule.matcher, "per-rule");
            assert_eq!(compiled.rule_rewrites.len(), 9, "5 paper rules + 4 probes");
            // The probes' sentinel constraints can never hold, so all
            // rewrites attribute to the paper rules — at every scale,
            // under either matcher, over the same tree evolution.
            assert!(compiled.rule_rewrites[5..].iter().all(|&n| n == 0));
            assert!(compiled.rewrites > 0);
            assert_eq!(compiled.rewrites, per_rule.rewrites);
            assert_eq!(compiled.rule_rewrites, per_rule.rule_rewrites);
        }
    }

    #[test]
    fn run_fleet_batched_covers_tree_axis() {
        for trees in [1usize, 3] {
            for workload in fleet_workloads() {
                let r = run_fleet_batched(workload, StrategyKind::TreeToaster, tiny(), 8, trees);
                assert_eq!(r.workload, workload);
                assert_eq!(r.trees, trees);
                assert_eq!(r.ops, 30);
                assert!(r.total_ns > 0);
                assert!(r.rewrites > 0, "fleet applied no rewrites");
                assert_eq!(r.scheduler, "sync");
                assert_eq!(r.contended_count, 0, "single-threaded never contends");
            }
        }
    }

    #[test]
    fn fleet_workload_list_covers_skew() {
        assert_eq!(fleet_workloads(), vec!['G', 'H', 'I']);
    }

    #[test]
    fn run_steal_pool_covers_both_deployments() {
        let cfg = tiny();
        let dedicated = run_steal_pool('I', StrategyKind::TreeToaster, cfg, 4, None);
        assert_eq!(dedicated.scheduler, "dedicated");
        assert_eq!(dedicated.workers, 4);
        assert_eq!(dedicated.steal_count, 0, "pinned workers never steal");
        assert!(dedicated.total_ns > 0);
        let stealing = run_steal_pool('I', StrategyKind::TreeToaster, cfg, 4, Some(2));
        assert_eq!(stealing.scheduler, "steal");
        assert_eq!(stealing.workers, 2);
        assert_eq!(stealing.trees, 4);
        assert_eq!(stealing.ops, 30);
        assert!(stealing.total_ns > 0);
    }

    #[test]
    fn adaptive_batch_tunes_k_and_fixed_path_is_unchanged() {
        // The policy itself: widen on heavy cancellation, narrow on none.
        assert_eq!(tune_batch_size(8, Some((100, 80))), 16);
        assert_eq!(tune_batch_size(8, Some((100, 2))), 4);
        assert_eq!(tune_batch_size(8, Some((100, 30))), 8);
        assert_eq!(tune_batch_size(8, Some((0, 0))), 8);
        assert_eq!(tune_batch_size(8, None), 8);
        assert_eq!(tune_batch_size(1, Some((10, 0))), 1, "floor");
        assert_eq!(tune_batch_size(1024, Some((10, 10))), 1024, "cap");
        // End-to-end: fixed runs report final == starting K; adaptive
        // runs complete and report whatever K they settled on.
        let fixed = run_jitd_batched('A', StrategyKind::TreeToaster, tiny(), 4);
        assert_eq!(fixed.final_batch_size, 4);
        let mut adaptive_cfg = tiny();
        adaptive_cfg.adaptive_batch = true;
        let adaptive = run_jitd_batched('A', StrategyKind::TreeToaster, adaptive_cfg, 4);
        assert_eq!(adaptive.batch_size, 4, "reported cell key is the start K");
        assert!(adaptive.final_batch_size >= 1);
        assert!(adaptive.ns_per_op() > 0.0);
    }

    #[test]
    fn async_commit_knob_pipelines_every_epoch_driver() {
        // The single-tree and fleet drivers under TT_ASYNC_COMMIT: same
        // measured outcome shape, commit axis flips, and the runs stay
        // agreement-clean (the equivalence proptest in
        // tests/commit_equivalence.rs pins the semantics; this pins the
        // drivers' plumbing).
        let mut piped_cfg = tiny();
        piped_cfg.async_commit = true;
        for strategy in [StrategyKind::TreeToaster, StrategyKind::Classic] {
            let sync = run_jitd_batched('A', strategy, tiny(), 8);
            let piped = run_jitd_batched('A', strategy, piped_cfg, 8);
            assert_eq!(sync.commit, "sync");
            assert_eq!(piped.commit, "async");
            assert_eq!(sync.rewrites, piped.rewrites, "{}", strategy.label());
            assert!(sync.worst_window_ns > 0);
            assert!(piped.worst_window_ns > 0);
            let fleet = run_fleet_batched('G', strategy, piped_cfg, 8, 3);
            assert_eq!(fleet.commit, "async");
            assert!(fleet.total_ns > 0);
        }
    }

    #[test]
    fn run_commit_pipeline_covers_both_commit_modes() {
        let cfg = tiny();
        for (async_commit, commit) in [(false, "sync"), (true, "async")] {
            for workload in ['G', 'I'] {
                let r = run_commit_pipeline(
                    workload,
                    StrategyKind::TreeToaster,
                    cfg,
                    8,
                    4,
                    async_commit,
                );
                assert_eq!(r.commit, commit);
                assert_eq!(r.scheduler, "sync", "cold pool: no reorganizer ran");
                assert_eq!(r.workers, 0);
                assert_eq!(r.trees, 4);
                assert_eq!(r.ops, 30);
                assert!(r.total_ns > 0);
                assert!(r.rewrites > 0, "mid-backlog epochs must rewrite");
                assert!(r.worst_window_ns > 0);
                assert!(r.worst_window_ns <= r.total_ns);
            }
        }
    }

    #[test]
    fn env_knobs_parse() {
        assert_eq!(env_u64("TT_DEFINITELY_UNSET_KNOB", 5), 5);
        let cfg = ExperimentConfig::from_env();
        assert!(cfg.records > 0);
    }

    #[test]
    fn paper_workload_list() {
        assert_eq!(paper_workloads(), vec!['A', 'B', 'C', 'D', 'F']);
    }

    #[test]
    fn run_service_measures_a_multi_tenant_daemon() {
        let r = run_service(tiny(), 16, 4);
        assert_eq!(r.workload, 'S');
        assert_eq!(r.mode, "service");
        assert_eq!(r.sessions, 16);
        assert_eq!(r.ops, 16 * tiny().ops, "every session got its ops");
        assert!(r.ops_per_sec() > 0.0);
        assert!(r.p99_ns > 0, "a latency distribution was recorded");
        assert!(
            r.p99_ns <= r.worst_window_ns,
            "p99 cannot exceed the slowest op"
        );
        assert!(r.final_strategy_bytes > 0, "tenants held view state");
    }
}
