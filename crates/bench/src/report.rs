//! The machine-readable bench trajectory: `BENCH_treetoaster.json`.
//!
//! One schema, two consumers: the `tt-bench` runner renders it, the
//! `tt-bench-check` CI gate validates it. Layout (schema version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "treetoaster",
//!   "quick": true,
//!   "config": {"records": 512, "ops": 96, "seed": 42,
//!              "crack_threshold": 64,
//!              "batch_sizes": [1, 8, 64], "workloads": ["A", …],
//!              "fleet_workloads": ["G", "H"], "fleet_trees": [1, 4]},
//!   "results": [
//!     {"strategy": "TT", "workload": "A", "batch_size": 8, "trees": 1,
//!      "ops": 96, "rewrites": 41, "ns_per_op": 1234.5,
//!      "ns_per_rewrite": 2890.1, "maintain_mean_ns": 310.0,
//!      "commit_mean_ns": 95.0, "peak_bytes": 8192,
//!      "final_bytes": 4096}, …
//!   ]
//! }
//! ```
//!
//! `trees` is the multi-tree axis (PR 4): single-tree cells carry
//! `trees: 1` (and older artifacts omit the field, which readers treat
//! as 1); the fleet workloads G/H/I appear at every swept tree count.
//!
//! `scheduler`/`workers` are the reorganizer-deployment axis (PR 5):
//! `"sync"` cells (the default when the fields are absent — every
//! pre-PR 5 artifact) measure the inline-reorganizing drivers, while
//! `"dedicated"` (one background worker per shard) and `"steal"` (a
//! work-stealing pool of `workers` threads) measure the threaded
//! deployments on the skewed fleet workload I. Threaded cells also
//! carry the scheduling ledger: `steal_count` and `contended_count`.
//!
//! `commit`/`worst_window_ns` are the commit-pipeline axis (PR 6):
//! `"sync"` cells (the default when the field is absent — every
//! pre-PR 6 artifact) pay the epoch apply inline at epoch close, while
//! `"async"` cells only *seal* at epoch close and a background
//! committer thread lands the epoch off the op path.
//! `worst_window_ns` is the slowest **commit window** observed — the
//! stall from epoch close until the op thread is free again (inline
//! apply vs O(1) seal), the tail-latency number the pipeline exists to
//! improve (ns/op averages the apply cost away).
//!
//! `mode`/`sessions`/`p99_ns`/`ops_per_sec` are the service axis
//! (PR 7): `"library"` cells (the default when `mode` is absent —
//! every pre-service artifact) come from the in-process drivers above,
//! while `"service"` cells measure the `tt-serve` daemon under
//! `sessions` concurrent tenants (workload S) — sustained `ops_per_sec`
//! plus the per-op latency tail (`p99_ns`, and `worst_window_ns`
//! repurposed as the single slowest op).
//!
//! `matcher`/`rule_count` are the rule-scale axis (PR 8): `"compiled"`
//! cells (the default when `matcher` is absent — every pre-automaton
//! artifact) search for rewrite sites through the rule set's
//! label-discriminated match automaton, `"per-rule"` cells run the
//! one-pattern-evaluation-per-rule baseline. `rule_count` is the number
//! of synthetic probe rules padded onto the paper's rule set (0 — and
//! absent in older artifacts — for every stock-rule cell); cells with
//! `rule_count > 0` come from the generic-mode rule-scale driver and
//! are excluded from the fleet-scaling and commit gates, which compare
//! stock-rule regimes. Cells also carry per-rule attribution
//! (`rule_matches`/`rule_rewrites`, measured-loop deltas) when the
//! driver can attribute them. A cell is keyed by `(strategy, workload,
//! batch_size, trees, scheduler, workers, commit, mode, sessions,
//! matcher, rule_count)`.
//!
//! Validation enforces, beyond schema and coverage, the **stealing
//! gate**: wherever a dedicated-worker baseline and a smaller stealing
//! pool were both measured, the pool's ns/op must stay within
//! [`STEAL_GATE_ENVELOPE`] of the baseline — work-stealing with fewer
//! threads must match or beat one-thread-per-shard under skew, and a
//! report that says otherwise is a scheduling regression. The
//! **commit gate** works the same way: every `commit: "async"` cell
//! must have a synchronous twin (same key except the commit axis),
//! stay within [`COMMIT_GATE_ENVELOPE`] of its ns/op, and — on the
//! skewed workload I, where hot-shard epochs make the apply cost a
//! real tail — be *ahead* of it on `worst_window_ns`. Service cells are
//! exempt from both (the daemon is a steal/async deployment with no
//! library twin); instead the **service promise** applies: a config
//! listing `service_sessions` must deliver a `mode: "service"` cell at
//! each promised session count, with a positive throughput and an
//! internally consistent latency tail (`p99_ns` ≤ the worst op).
//! The **rule-scale gate** judges the automaton itself: at the smallest
//! swept rule count the compiled matcher must stay within
//! [`RULE_SCALE_PARITY_ENVELOPE`] of the per-rule baseline on workload
//! A (the automaton must not lose when there is nothing to share), and
//! at the largest swept count — once it reaches
//! [`RULE_SCALE_SPEEDUP_MIN_RULES`] — the per-rule baseline must
//! measure at least [`RULE_SCALE_SPEEDUP`]× the compiled ns/op: one
//! discrimination-tree walk has to beat R pattern evaluations once R is
//! large, or the compilation buys nothing.

use crate::{BatchRunResult, ExperimentConfig};
use tt_jitd::StrategyKind;
use tt_metrics::Json;

/// Version stamp of the emitted layout.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Default output filename.
pub const BENCH_FILE: &str = "BENCH_treetoaster.json";

/// What a `tt-bench` invocation sweeps.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Quick mode (CI scale) vs full scale.
    pub quick: bool,
    /// Scale knobs shared by every run.
    pub experiment: ExperimentConfig,
    /// Ops-per-epoch axis.
    pub batch_sizes: Vec<usize>,
    /// Single-tree workload mnemonics.
    pub workloads: Vec<char>,
    /// Fleet workload mnemonics (G/H/I); empty = no multi-tree sweep.
    pub fleet_workloads: Vec<char>,
    /// Tree counts the fleet workloads sweep.
    pub fleet_trees: Vec<usize>,
    /// Shard counts for the threaded workload-I scheduler cells; empty
    /// disables them.
    pub steal_trees: Vec<usize>,
    /// Stealing-pool sizes swept against each dedicated baseline.
    pub steal_workers: Vec<usize>,
    /// Fleet workloads measured through the commit-pipeline driver
    /// (one sync + one async cell each); empty disables them. A
    /// non-empty list is a coverage promise validation holds the report
    /// to: every listed workload must carry both commit modes.
    pub commit_workloads: Vec<char>,
    /// Session counts the service harness sweeps (workload S through
    /// the `tt-serve` daemon); empty disables the service cells. A
    /// non-empty list is a coverage promise like `commit_workloads`:
    /// every listed count must appear as a `mode: "service"` cell.
    pub service_sessions: Vec<usize>,
    /// Op threads driving the service harness.
    pub service_threads: usize,
    /// Synthetic probe-rule counts the rule-scale driver sweeps (each
    /// at both matchers on workloads A and G); empty disables the
    /// cells. A non-empty list is a coverage promise like
    /// `commit_workloads`: every listed count must appear with both
    /// matchers on both workloads.
    pub rule_scale: Vec<usize>,
    /// Runs per cell; the fastest (minimum total ns) run is kept. The
    /// minimum is the standard noise-robust latency estimator: scheduler
    /// preemption and cache pollution only ever add time, so min-of-N
    /// converges on the machine's true cost as N grows.
    pub repeat: usize,
}

/// Renders the full report document.
pub fn render_report(sweep: &SweepConfig, results: &[BatchRunResult]) -> String {
    let config = Json::obj([
        ("records", Json::Num(sweep.experiment.records as f64)),
        ("ops", Json::Num(sweep.experiment.ops as f64)),
        ("seed", Json::Num(sweep.experiment.seed as f64)),
        (
            "crack_threshold",
            Json::Num(sweep.experiment.crack_threshold as f64),
        ),
        ("repeat", Json::Num(sweep.repeat.max(1) as f64)),
        (
            "batch_sizes",
            Json::Arr(
                sweep
                    .batch_sizes
                    .iter()
                    .map(|&b| Json::Num(b as f64))
                    .collect(),
            ),
        ),
        (
            "workloads",
            Json::Arr(
                sweep
                    .workloads
                    .iter()
                    .map(|w| Json::Str(w.to_string()))
                    .collect(),
            ),
        ),
        (
            "fleet_workloads",
            Json::Arr(
                sweep
                    .fleet_workloads
                    .iter()
                    .map(|w| Json::Str(w.to_string()))
                    .collect(),
            ),
        ),
        (
            "fleet_trees",
            Json::Arr(
                sweep
                    .fleet_trees
                    .iter()
                    .map(|&t| Json::Num(t as f64))
                    .collect(),
            ),
        ),
        (
            "steal_trees",
            Json::Arr(
                sweep
                    .steal_trees
                    .iter()
                    .map(|&t| Json::Num(t as f64))
                    .collect(),
            ),
        ),
        (
            "steal_workers",
            Json::Arr(
                sweep
                    .steal_workers
                    .iter()
                    .map(|&w| Json::Num(w as f64))
                    .collect(),
            ),
        ),
        (
            "commit_workloads",
            Json::Arr(
                sweep
                    .commit_workloads
                    .iter()
                    .map(|w| Json::Str(w.to_string()))
                    .collect(),
            ),
        ),
        (
            "service_sessions",
            Json::Arr(
                sweep
                    .service_sessions
                    .iter()
                    .map(|&s| Json::Num(s as f64))
                    .collect(),
            ),
        ),
        ("service_threads", Json::Num(sweep.service_threads as f64)),
        (
            "rule_scale",
            Json::Arr(
                sweep
                    .rule_scale
                    .iter()
                    .map(|&r| Json::Num(r as f64))
                    .collect(),
            ),
        ),
    ]);
    let results = Json::Arr(
        results
            .iter()
            .map(|r| {
                Json::obj([
                    ("strategy", Json::Str(r.strategy.label().to_string())),
                    ("workload", Json::Str(r.workload.to_string())),
                    ("batch_size", Json::Num(r.batch_size as f64)),
                    ("trees", Json::Num(r.trees as f64)),
                    ("ops", Json::Num(r.ops as f64)),
                    ("rewrites", Json::Num(r.rewrites as f64)),
                    ("ns_per_op", Json::Num(r.ns_per_op())),
                    ("ns_per_rewrite", Json::Num(r.ns_per_rewrite())),
                    ("maintain_mean_ns", Json::Num(r.maintain_mean_ns)),
                    ("commit_mean_ns", Json::Num(r.commit_mean_ns)),
                    ("peak_bytes", Json::Num(r.peak_strategy_bytes as f64)),
                    ("final_bytes", Json::Num(r.final_strategy_bytes as f64)),
                    ("scheduler", Json::Str(r.scheduler.to_string())),
                    ("workers", Json::Num(r.workers as f64)),
                    ("steal_count", Json::Num(r.steal_count as f64)),
                    ("contended_count", Json::Num(r.contended_count as f64)),
                    ("commit", Json::Str(r.commit.to_string())),
                    ("worst_window_ns", Json::Num(r.worst_window_ns as f64)),
                    ("mode", Json::Str(r.mode.to_string())),
                    ("sessions", Json::Num(r.sessions as f64)),
                    ("p99_ns", Json::Num(r.p99_ns as f64)),
                    ("ops_per_sec", Json::Num(r.ops_per_sec())),
                    ("matcher", Json::Str(r.matcher.to_string())),
                    ("rule_count", Json::Num(r.rule_count as f64)),
                    (
                        "rule_matches",
                        Json::Arr(
                            r.rule_matches
                                .iter()
                                .map(|&n| Json::Num(n as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "rule_rewrites",
                        Json::Arr(
                            r.rule_rewrites
                                .iter()
                                .map(|&n| Json::Num(n as f64))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj([
        ("schema_version", Json::Num(BENCH_SCHEMA_VERSION as f64)),
        ("name", Json::Str("treetoaster".to_string())),
        ("quick", Json::Bool(sweep.quick)),
        ("config", config),
        ("results", results),
    ])
    .render()
}

/// Summary of a validated report.
#[derive(Debug)]
pub struct ReportSummary {
    /// Result rows.
    pub results: usize,
    /// Distinct strategy labels seen.
    pub strategies: Vec<String>,
    /// Distinct workloads seen.
    pub workloads: Vec<String>,
    /// Distinct batch sizes seen.
    pub batch_sizes: Vec<u64>,
    /// Distinct fleet tree counts seen (ascending; `[1]` for a purely
    /// single-tree report).
    pub tree_counts: Vec<u64>,
    /// Distinct reorganizer deployments seen (`["sync"]` for pre-PR 5
    /// artifacts).
    pub schedulers: Vec<String>,
    /// Distinct commit modes seen (`["sync"]` for pre-PR 6 artifacts).
    pub commits: Vec<String>,
    /// Distinct service session counts seen (ascending; empty for
    /// artifacts without daemon cells).
    pub session_counts: Vec<u64>,
    /// Distinct matchers seen (`["compiled"]` for pre-automaton
    /// artifacts).
    pub matchers: Vec<String>,
}

fn require_num(entry: &Json, field: &str, index: usize) -> Result<f64, String> {
    let value = entry
        .get(field)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("results[{index}]: missing numeric `{field}`"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!(
            "results[{index}]: `{field}` must be finite and ≥ 0, got {value}"
        ));
    }
    Ok(value)
}

/// Validates a rendered report against the CI contract: schema version,
/// required fields, finite positive latencies, full strategy coverage,
/// and the acceptance batch sizes {1, 8, 64}.
pub fn validate_report(text: &str) -> Result<ReportSummary, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing `schema_version`")?;
    if version != BENCH_SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version}, expected {BENCH_SCHEMA_VERSION}"
        ));
    }
    if doc.get("name").and_then(Json::as_str) != Some("treetoaster") {
        return Err("missing or wrong `name`".into());
    }
    if doc.get("config").is_none() {
        return Err("missing `config`".into());
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing `results` array")?;
    if results.is_empty() {
        return Err("`results` is empty".into());
    }

    let mut strategies: Vec<String> = Vec::new();
    let mut workloads: Vec<String> = Vec::new();
    let mut batch_sizes: Vec<u64> = Vec::new();
    let mut tree_counts: Vec<u64> = Vec::new();
    let mut schedulers: Vec<String> = Vec::new();
    let mut commits: Vec<String> = Vec::new();
    // (strategy, batch, trees, ns_per_op) for every workload-G cell,
    // feeding the fleet-scaling gate below.
    let mut g_cells: Vec<(String, u64, u64, f64)> = Vec::new();
    // (strategy, workload, batch, trees, scheduler, workers, ns_per_op)
    // for every threaded cell, feeding the stealing gate below.
    let mut pool_cells: Vec<(String, String, u64, u64, String, u64, f64)> = Vec::new();
    // Every cell's full key plus (commit, ns_per_op, worst_window_ns),
    // feeding the commit-pipeline gate below.
    let mut commit_cells: Vec<CommitCell> = Vec::new();
    // (sessions, ops_per_sec, p99_ns) for every service cell, feeding
    // the service coverage promise below.
    let mut service_cells: Vec<(u64, f64, f64)> = Vec::new();
    let mut matchers: Vec<String> = Vec::new();
    // (workload, rule_count, matcher, ns_per_op) for every rule-scale
    // cell (rule_count > 0), feeding the rule-scale gate below.
    let mut rule_cells: Vec<(String, u64, String, f64)> = Vec::new();
    for (i, entry) in results.iter().enumerate() {
        let strategy = entry
            .get("strategy")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("results[{i}]: missing `strategy`"))?;
        let workload = entry
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("results[{i}]: missing `workload`"))?;
        // Harness axis (PR 7): absent = "library" (pre-service artifacts).
        let mode = match entry.get("mode") {
            None => "library",
            Some(v) => v
                .as_str()
                .ok_or_else(|| format!("results[{i}]: `mode` must be a string"))?,
        };
        if !matches!(mode, "library" | "service") {
            return Err(format!("results[{i}]: unknown mode `{mode}`"));
        }
        let batch = require_num(entry, "batch_size", i)?;
        if batch < 1.0 || batch.fract() != 0.0 {
            return Err(format!("results[{i}]: bad batch_size {batch}"));
        }
        // `trees` is optional (pre-forest artifacts omit it): absent = 1.
        let trees = match entry.get("trees") {
            None => 1.0,
            Some(_) => require_num(entry, "trees", i)?,
        };
        if trees < 1.0 || trees.fract() != 0.0 {
            return Err(format!("results[{i}]: bad trees {trees}"));
        }
        let ns_per_op = require_num(entry, "ns_per_op", i)?;
        if ns_per_op == 0.0 {
            return Err(format!("results[{i}]: ns_per_op is zero"));
        }
        require_num(entry, "peak_bytes", i)?;
        require_num(entry, "rewrites", i)?;
        // Scheduler axis (PR 5): absent = "sync" (pre-PR 5 artifacts).
        let scheduler = match entry.get("scheduler") {
            None => "sync",
            Some(v) => v
                .as_str()
                .ok_or_else(|| format!("results[{i}]: `scheduler` must be a string"))?,
        };
        if !matches!(scheduler, "sync" | "dedicated" | "steal") {
            return Err(format!("results[{i}]: unknown scheduler `{scheduler}`"));
        }
        let workers = match entry.get("workers") {
            None => 0.0,
            Some(_) => require_num(entry, "workers", i)?,
        };
        if workers.fract() != 0.0 {
            return Err(format!("results[{i}]: bad workers {workers}"));
        }
        if scheduler == "sync" {
            if workers != 0.0 {
                return Err(format!("results[{i}]: sync cell claims {workers} workers"));
            }
        } else {
            if workers < 1.0 {
                return Err(format!(
                    "results[{i}]: threaded cell without a worker count"
                ));
            }
            require_num(entry, "steal_count", i)?;
            require_num(entry, "contended_count", i)?;
            // Service cells run a stealing pool too, but the stealing
            // gate compares reorganizer deployments on workload I —
            // the daemon cells are judged by their own gate below.
            if mode != "service" {
                pool_cells.push((
                    strategy.to_string(),
                    workload.to_string(),
                    batch as u64,
                    trees as u64,
                    scheduler.to_string(),
                    workers as u64,
                    ns_per_op,
                ));
            }
        }
        // Commit axis (PR 6): absent = "sync" (pre-PR 6 artifacts).
        let commit = match entry.get("commit") {
            None => "sync",
            Some(v) => v
                .as_str()
                .ok_or_else(|| format!("results[{i}]: `commit` must be a string"))?,
        };
        if !matches!(commit, "sync" | "async") {
            return Err(format!("results[{i}]: unknown commit mode `{commit}`"));
        }
        // Matcher axis (PR 8): absent = "compiled" (pre-automaton
        // artifacts), rule_count absent = the stock paper rule set.
        let matcher = match entry.get("matcher") {
            None => "compiled",
            Some(v) => v
                .as_str()
                .ok_or_else(|| format!("results[{i}]: `matcher` must be a string"))?,
        };
        if !matches!(matcher, "compiled" | "per-rule") {
            return Err(format!("results[{i}]: unknown matcher `{matcher}`"));
        }
        let rule_count = match entry.get("rule_count") {
            None => 0.0,
            Some(_) => require_num(entry, "rule_count", i)?,
        };
        if rule_count.fract() != 0.0 {
            return Err(format!("results[{i}]: bad rule_count {rule_count}"));
        }
        for field in ["rule_matches", "rule_rewrites"] {
            if let Some(v) = entry.get(field) {
                let arr = v
                    .as_arr()
                    .ok_or_else(|| format!("results[{i}]: `{field}` must be an array"))?;
                if arr.iter().any(|e| e.as_f64().is_none()) {
                    return Err(format!("results[{i}]: `{field}` must contain numbers"));
                }
            }
        }
        if rule_count > 0.0 {
            rule_cells.push((
                workload.to_string(),
                rule_count as u64,
                matcher.to_string(),
                ns_per_op,
            ));
        }
        if !matchers.iter().any(|m| m == matcher) {
            matchers.push(matcher.to_string());
        }
        let worst_window_ns = match entry.get("worst_window_ns") {
            None => 0.0,
            Some(_) => require_num(entry, "worst_window_ns", i)?,
        };
        if mode == "service" {
            // The daemon runs async commits by design; it has no sync
            // twin (the commit gate's library twins cover that axis).
            // Instead the service cell must carry a credible latency
            // distribution: sessions, a positive throughput, and a p99
            // that cannot exceed the worst single op.
            let sessions = require_num(entry, "sessions", i)?;
            if sessions < 1.0 || sessions.fract() != 0.0 {
                return Err(format!("results[{i}]: bad service sessions {sessions}"));
            }
            let p99 = require_num(entry, "p99_ns", i)?;
            if p99 == 0.0 {
                return Err(format!("results[{i}]: service cell without a p99"));
            }
            if worst_window_ns > 0.0 && p99 > worst_window_ns {
                return Err(format!(
                    "results[{i}]: p99 {p99:.0} ns exceeds the worst op \
                     {worst_window_ns:.0} ns — the tail is inconsistent"
                ));
            }
            let ops_per_sec = require_num(entry, "ops_per_sec", i)?;
            if ops_per_sec == 0.0 {
                return Err(format!("results[{i}]: service cell without throughput"));
            }
            service_cells.push((sessions as u64, ops_per_sec, p99));
        } else if rule_count == 0.0 {
            // Rule-scale cells never enter the commit gate: they are a
            // generic-mode matcher comparison, not a commit regime.
            commit_cells.push(CommitCell {
                strategy: strategy.to_string(),
                workload: workload.to_string(),
                batch: batch as u64,
                trees: trees as u64,
                scheduler: scheduler.to_string(),
                workers: workers as u64,
                commit: commit.to_string(),
                ns_per_op,
                worst_window_ns,
            });
        }
        if !commits.iter().any(|c| c == commit) {
            commits.push(commit.to_string());
        }
        if !schedulers.iter().any(|s| s == scheduler) {
            schedulers.push(scheduler.to_string());
        }
        if !strategies.iter().any(|s| s == strategy) {
            strategies.push(strategy.to_string());
        }
        if !workloads.iter().any(|w| w == workload) {
            workloads.push(workload.to_string());
        }
        if !batch_sizes.contains(&(batch as u64)) {
            batch_sizes.push(batch as u64);
        }
        if !tree_counts.contains(&(trees as u64)) {
            tree_counts.push(trees as u64);
        }
        if workload == "G" && rule_count == 0.0 {
            // Rule-scale G cells run the generic-mode driver on one
            // tree; mixing them into the fleet-scaling series would
            // compare different maintenance regimes.
            g_cells.push((strategy.to_string(), batch as u64, trees as u64, ns_per_op));
        }
    }

    for required in StrategyKind::all() {
        if !strategies.iter().any(|s| s == required.label()) {
            return Err(format!(
                "strategy `{}` missing from results",
                required.label()
            ));
        }
    }
    for required in [1u64, 8, 64] {
        if !batch_sizes.contains(&required) {
            return Err(format!("batch size {required} missing from results"));
        }
    }
    tree_counts.sort_unstable();
    // Multi-tree coverage contract: a report sweeping any fleet (trees
    // > 1) must carry both fleet workloads and at least two tree counts
    // on G, so the scaling axis stays regression-gated. Pre-forest
    // artifacts (all cells trees == 1, no G/H) still validate.
    if tree_counts.iter().any(|&t| t > 1) {
        for required in ["G", "H"] {
            if !workloads.iter().any(|w| w == required) {
                return Err(format!(
                    "multi-tree report is missing fleet workload `{required}`"
                ));
            }
        }
        let mut g_trees: Vec<u64> = g_cells.iter().map(|c| c.2).collect();
        g_trees.sort_unstable();
        g_trees.dedup();
        if g_trees.len() < 2 {
            return Err(format!(
                "workload G must sweep at least two tree counts \
                 (saw {g_trees:?}) — the scaling axis needs a slope"
            ));
        }
        check_fleet_scaling(&g_cells)?;
    }
    check_steal_scheduling(&pool_cells)?;
    // Commit-pipeline coverage: a config that promises commit cells
    // (`commit_workloads` non-empty — every post-PR 6 runner) must
    // deliver both commit modes for each promised workload. Pre-PR 6
    // artifacts carry no such config key and stay valid.
    let promised: Vec<String> = doc
        .get("config")
        .and_then(|c| c.get("commit_workloads"))
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    for workload in &promised {
        for mode in ["sync", "async"] {
            if !commit_cells
                .iter()
                .any(|c| c.workload == *workload && c.commit == mode)
            {
                return Err(format!(
                    "config promises commit-pipeline coverage on workload \
                     `{workload}` but no `commit: \"{mode}\"` cell exists"
                ));
            }
        }
    }
    check_commit_pipeline(&commit_cells)?;
    // Service coverage: a config that promises daemon cells
    // (`service_sessions` non-empty — every post-service runner) must
    // deliver a `mode: "service"` cell at each promised session count.
    // Pre-service artifacts carry no such config key and stay valid.
    let promised_sessions: Vec<u64> = doc
        .get("config")
        .and_then(|c| c.get("service_sessions"))
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(Json::as_f64)
                .map(|s| s as u64)
                .collect()
        })
        .unwrap_or_default();
    for &n in &promised_sessions {
        if !service_cells.iter().any(|&(s, _, _)| s == n) {
            return Err(format!(
                "config promises a service cell at {n} sessions but none exists"
            ));
        }
    }
    // Rule-scale coverage: a config that promises rule-scale cells
    // (`rule_scale` non-empty — every post-automaton runner) must
    // deliver both matchers on workloads A and G at each promised probe
    // count. Pre-automaton artifacts carry no such key and stay valid.
    let promised_rules: Vec<u64> = doc
        .get("config")
        .and_then(|c| c.get("rule_scale"))
        .and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .filter_map(Json::as_f64)
                .map(|r| r as u64)
                .collect()
        })
        .unwrap_or_default();
    for &r in &promised_rules {
        for workload in ["A", "G"] {
            for matcher in ["compiled", "per-rule"] {
                if !rule_cells
                    .iter()
                    .any(|c| c.0 == workload && c.1 == r && c.2 == matcher)
                {
                    return Err(format!(
                        "config promises a rule-scale cell at R={r} on workload \
                         `{workload}` with the {matcher} matcher but none exists"
                    ));
                }
            }
        }
    }
    check_rule_scale(&rule_cells)?;
    let mut session_counts: Vec<u64> = service_cells.iter().map(|&(s, _, _)| s).collect();
    session_counts.sort_unstable();
    session_counts.dedup();
    Ok(ReportSummary {
        results: results.len(),
        strategies,
        workloads,
        batch_sizes,
        tree_counts,
        schedulers,
        commits,
        session_counts,
        matchers,
    })
}

/// How much slower than the dedicated-worker baseline a stealing pool
/// may measure before the gate trips. Threaded cells are the noisiest
/// in the report (the op path races the reorganizers), so like the
/// fleet-scaling envelope this is set to catch genuine inversions —
/// "stealing lost badly" — rather than scheduler jitter; the committed
/// artifact itself should show the pool at ≤ 1.0×.
pub const STEAL_GATE_ENVELOPE: f64 = 1.25;

/// The stealing gate: for every `(strategy, workload, batch, trees)`
/// combination that measured threaded deployments, a dedicated-worker
/// baseline must exist alongside at least one stealing pool with
/// `workers < trees` (otherwise it isn't stealing, just relabeled
/// dedicated workers), and the best such pool must stay within
/// [`STEAL_GATE_ENVELOPE`] of the baseline's ns/op.
#[allow(clippy::type_complexity)]
fn check_steal_scheduling(
    pool_cells: &[(String, String, u64, u64, String, u64, f64)],
) -> Result<(), String> {
    let groups: std::collections::BTreeSet<(String, String, u64, u64)> = pool_cells
        .iter()
        .map(|(s, w, b, t, _, _, _)| (s.clone(), w.clone(), *b, *t))
        .collect();
    for (strategy, workload, batch, trees) in groups {
        let of_kind = |kind: &str| -> Vec<(u64, f64)> {
            pool_cells
                .iter()
                .filter(|(s, w, b, t, sched, _, _)| {
                    *s == strategy && *w == workload && *b == batch && *t == trees && sched == kind
                })
                .map(|&(_, _, _, _, _, workers, ns)| (workers, ns))
                .collect()
        };
        let Some(&(_, dedicated_ns)) = of_kind("dedicated").first() else {
            return Err(format!(
                "threaded cells for {workload}/{strategy}/K={batch}/T={trees} \
                 lack a dedicated-worker baseline"
            ));
        };
        let Some((best_workers, best_ns)) = of_kind("steal")
            .into_iter()
            .filter(|&(workers, _)| workers < trees)
            .min_by(|a, b| a.1.total_cmp(&b.1))
        else {
            return Err(format!(
                "threaded cells for {workload}/{strategy}/K={batch}/T={trees} \
                 have no stealing pool smaller than the shard count"
            ));
        };
        if best_ns > dedicated_ns * STEAL_GATE_ENVELOPE {
            return Err(format!(
                "stealing regression on {workload}/{strategy}/K={batch}/T={trees}: \
                 best pool ({best_workers} workers) ran {best_ns:.0} ns/op vs \
                 {dedicated_ns:.0} for {trees} dedicated workers \
                 (>{STEAL_GATE_ENVELOPE}x envelope)"
            ));
        }
    }
    Ok(())
}

/// How much slower than its synchronous twin an async-commit cell's
/// ns/op may measure before the commit gate trips. The async pipeline
/// moves the apply, it doesn't remove it — the clock still runs until
/// the committer drains — so on uniform workloads the two twins do the
/// same total work and the envelope only catches genuine pipeline
/// overhead (queue churn, lock traffic), not jitter.
pub const COMMIT_GATE_ENVELOPE: f64 = 1.25;

/// One parsed result row for the commit gate: the full cell key plus
/// the two latency numbers the gate compares.
#[derive(Debug, Clone)]
struct CommitCell {
    strategy: String,
    workload: String,
    batch: u64,
    trees: u64,
    scheduler: String,
    workers: u64,
    commit: String,
    ns_per_op: f64,
    worst_window_ns: f64,
}

/// The commit gate: every `commit: "async"` cell must have a
/// synchronous twin (identical key except the commit axis) to be
/// judged against — ns/op within [`COMMIT_GATE_ENVELOPE`] everywhere,
/// and on the skewed workload I (where the hot shards' epochs make the
/// inline apply a real tail contributor) the async cell must be
/// *ahead* on `worst_window_ns`: a seal-only commit window that is
/// slower than pay-the-apply means the pipeline's whole premise failed.
fn check_commit_pipeline(commit_cells: &[CommitCell]) -> Result<(), String> {
    for cell in commit_cells.iter().filter(|c| c.commit == "async") {
        let Some(twin) = commit_cells.iter().find(|c| {
            c.commit == "sync"
                && c.strategy == cell.strategy
                && c.workload == cell.workload
                && c.batch == cell.batch
                && c.trees == cell.trees
                && c.scheduler == cell.scheduler
                && c.workers == cell.workers
        }) else {
            return Err(format!(
                "async commit cell {}/{}/K={}/T={} lacks its synchronous twin",
                cell.workload, cell.strategy, cell.batch, cell.trees
            ));
        };
        if cell.ns_per_op > twin.ns_per_op * COMMIT_GATE_ENVELOPE {
            return Err(format!(
                "commit-pipeline regression on {}/{}/K={}/T={}: async ran \
                 {:.0} ns/op vs {:.0} sync (>{COMMIT_GATE_ENVELOPE}x envelope)",
                cell.workload,
                cell.strategy,
                cell.batch,
                cell.trees,
                cell.ns_per_op,
                twin.ns_per_op
            ));
        }
        if cell.workload == "I" && cell.worst_window_ns > twin.worst_window_ns {
            return Err(format!(
                "commit-pipeline tail regression on I/{}/K={}/T={}: async \
                 worst commit window {:.0} ns vs {:.0} sync — sealing must \
                 beat paying the apply inline under skew",
                cell.strategy, cell.batch, cell.trees, cell.worst_window_ns, twin.worst_window_ns
            ));
        }
    }
    Ok(())
}

/// How much slower than the per-rule baseline the compiled matcher may
/// measure at the *smallest* swept rule count before the rule-scale
/// parity gate trips. With only a handful of rules there is little
/// prefix to share, so the automaton walk and the per-rule loop do
/// near-identical work — like the other envelopes this catches genuine
/// inversions ("compilation made small rule sets slower"), not runner
/// jitter; the committed artifact itself should show ≈1.0×.
pub const RULE_SCALE_PARITY_ENVELOPE: f64 = 1.25;

/// Minimum compiled-matcher speedup over the per-rule baseline demanded
/// at the *largest* swept rule count, once that count reaches
/// [`RULE_SCALE_SPEEDUP_MIN_RULES`]: the per-rule cell's ns/op must be
/// at least this multiple of the compiled cell's. One shared
/// discrimination-tree walk per node versus R pattern evaluations is
/// the automaton's entire reason to exist; if it cannot clear 2× at 64+
/// rules the compilation regressed.
pub const RULE_SCALE_SPEEDUP: f64 = 2.0;

/// Rule count from which the speedup gate applies. Below it the probe
/// overhead is too small for a robust ratio on noisy CI runners.
pub const RULE_SCALE_SPEEDUP_MIN_RULES: u64 = 64;

/// The rule-scale gate, judged on workload A (the single-tree YCSB mix;
/// the G twin is coverage for the fleet op mix, not a second gate):
/// parity at the smallest swept count, [`RULE_SCALE_SPEEDUP`]× at the
/// largest once it reaches [`RULE_SCALE_SPEEDUP_MIN_RULES`]. Cells are
/// `(workload, rule_count, matcher, ns_per_op)`.
fn check_rule_scale(rule_cells: &[(String, u64, String, f64)]) -> Result<(), String> {
    let a_cells: Vec<_> = rule_cells.iter().filter(|c| c.0 == "A").collect();
    let mut counts: Vec<u64> = a_cells.iter().map(|c| c.1).collect();
    counts.sort_unstable();
    counts.dedup();
    let (Some(&rmin), Some(&rmax)) = (counts.first(), counts.last()) else {
        return Ok(());
    };
    let ns_of = |r: u64, matcher: &str| -> Option<f64> {
        a_cells
            .iter()
            .find(|c| c.1 == r && c.2 == matcher)
            .map(|c| c.3)
    };
    if let (Some(compiled), Some(per_rule)) = (ns_of(rmin, "compiled"), ns_of(rmin, "per-rule")) {
        if compiled > per_rule * RULE_SCALE_PARITY_ENVELOPE {
            return Err(format!(
                "rule-scale parity regression on A at R={rmin}: compiled ran \
                 {compiled:.0} ns/op vs {per_rule:.0} per-rule \
                 (>{RULE_SCALE_PARITY_ENVELOPE}x envelope) — the automaton \
                 must not lose at small rule counts"
            ));
        }
    }
    if rmax >= RULE_SCALE_SPEEDUP_MIN_RULES {
        if let (Some(compiled), Some(per_rule)) = (ns_of(rmax, "compiled"), ns_of(rmax, "per-rule"))
        {
            if per_rule < compiled * RULE_SCALE_SPEEDUP {
                return Err(format!(
                    "rule-scale speedup missing on A at R={rmax}: compiled ran \
                     {compiled:.0} ns/op vs {per_rule:.0} per-rule — the \
                     automaton must be ≥{RULE_SCALE_SPEEDUP}x faster once the \
                     rule set is this large"
                ));
            }
        }
    }
    Ok(())
}

/// The fleet-scaling gate on workload G (burst-of-plans): per
/// (strategy, batch size), ns/op **per maintained view** must grow
/// sublinearly in tree count between the smallest and largest swept
/// counts. Views scale with trees, so the bound is
/// `ns(T₂)/T₂ < (ns(T₁)/T₁) · (T₂/T₁)` — i.e. `ns(T₂) < ns(T₁)·(T₂/T₁)²`.
/// Per-shard isolation keeps real runs near-flat in total ns/op (each op
/// lands on one smaller tree), so the quadratic envelope only trips on
/// genuine scaling rot, not scheduler noise.
fn check_fleet_scaling(g_cells: &[(String, u64, u64, f64)]) -> Result<(), String> {
    for (strategy, batch) in g_cells
        .iter()
        .map(|(s, b, _, _)| (s.clone(), *b))
        .collect::<std::collections::BTreeSet<(String, u64)>>()
    {
        let mut series: Vec<(u64, f64)> = g_cells
            .iter()
            .filter(|(s, b, _, _)| *s == strategy && *b == batch)
            .map(|&(_, _, t, ns)| (t, ns))
            .collect();
        series.sort_by_key(|&(t, _)| t);
        let Some((&(t1, ns1), &(t2, ns2))) = series.first().zip(series.last()) else {
            continue;
        };
        if t1 == t2 {
            continue;
        }
        let ratio = t2 as f64 / t1 as f64;
        if ns2 >= ns1 * ratio * ratio {
            return Err(format!(
                "fleet scaling regression on G/{strategy}/K={batch}: \
                 ns/op {ns1:.0} at {t1} trees → {ns2:.0} at {t2} trees \
                 (per-view growth is superlinear in tree count)"
            ));
        }
    }
    Ok(())
}

/// Default per-cell ns/op regression tolerance for
/// [`compare_reports`]: 15% slower than the baseline fails.
pub const DEFAULT_REGRESSION_THRESHOLD: f64 = 0.15;

/// One (strategy, workload, batch size, trees, scheduler, workers)
/// cell's before/after latency.
#[derive(Debug, Clone)]
pub struct CellDelta {
    /// Strategy label.
    pub strategy: String,
    /// Workload mnemonic.
    pub workload: String,
    /// Ops per maintenance epoch.
    pub batch_size: u64,
    /// Fleet tree count (1 for single-tree cells).
    pub trees: u64,
    /// Reorganizer deployment (`"sync"` for inline-reorganizing cells).
    pub scheduler: String,
    /// Background workers (0 for sync cells).
    pub workers: u64,
    /// Commit pipeline (`"sync"` for inline-apply cells).
    pub commit: String,
    /// Harness (`"library"` for in-process cells, `"service"` for
    /// daemon cells; pre-service artifacts key as `"library"`).
    pub mode: String,
    /// Concurrent daemon sessions (0 for library cells).
    pub sessions: u64,
    /// Match-site search implementation (`"compiled"` for pre-automaton
    /// artifacts).
    pub matcher: String,
    /// Synthetic probe rules (0 for stock-rule cells).
    pub rule_count: u64,
    /// Baseline ns/op.
    pub old_ns: f64,
    /// Candidate ns/op.
    pub new_ns: f64,
}

impl CellDelta {
    /// `new / old` — above 1.0 is a slowdown.
    pub fn ratio(&self) -> f64 {
        self.new_ns / self.old_ns
    }
}

/// The outcome of a trend comparison between two valid reports.
#[derive(Debug)]
pub struct Comparison {
    /// Every cell present in both reports.
    pub cells: Vec<CellDelta>,
    /// The tolerance regressions were judged against.
    pub threshold: f64,
}

impl Comparison {
    /// Cells whose ns/op grew beyond the threshold.
    pub fn regressions(&self) -> impl Iterator<Item = &CellDelta> + '_ {
        self.cells
            .iter()
            .filter(|c| c.ratio() > 1.0 + self.threshold)
    }

    /// True if no cell regressed beyond the threshold.
    pub fn passed(&self) -> bool {
        self.regressions().next().is_none()
    }
}

/// One parsed result row: `(strategy, workload, batch, trees,
/// scheduler, workers, commit, mode, sessions, matcher, rule_count,
/// ns_per_op)`.
type RawCell = (
    String,
    String,
    u64,
    u64,
    String,
    u64,
    String,
    String,
    u64,
    String,
    u64,
    f64,
);

fn collect_cells(text: &str, which: &str) -> Result<Vec<RawCell>, String> {
    validate_report(text).map_err(|e| format!("{which} report: {e}"))?;
    let doc = Json::parse(text).expect("validated above");
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .expect("validated");
    Ok(results
        .iter()
        .map(|entry| {
            (
                entry
                    .get("strategy")
                    .and_then(Json::as_str)
                    .expect("validated")
                    .to_string(),
                entry
                    .get("workload")
                    .and_then(Json::as_str)
                    .expect("validated")
                    .to_string(),
                entry
                    .get("batch_size")
                    .and_then(Json::as_f64)
                    .expect("validated") as u64,
                // Pre-forest artifacts carry no `trees`: key them as 1
                // so their cells pair with the candidate's single-tree
                // cells.
                entry.get("trees").and_then(Json::as_f64).unwrap_or(1.0) as u64,
                // Pre-PR 5 artifacts carry no scheduler axis: they are
                // sync cells with no background workers.
                entry
                    .get("scheduler")
                    .and_then(Json::as_str)
                    .unwrap_or("sync")
                    .to_string(),
                entry.get("workers").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                // Pre-PR 6 artifacts carry no commit axis: inline apply.
                entry
                    .get("commit")
                    .and_then(Json::as_str)
                    .unwrap_or("sync")
                    .to_string(),
                // Pre-service artifacts carry no harness axis: library.
                entry
                    .get("mode")
                    .and_then(Json::as_str)
                    .unwrap_or("library")
                    .to_string(),
                entry.get("sessions").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                // Pre-automaton artifacts carry no matcher axis: every
                // cell keys as the compiled matcher on the stock rules.
                entry
                    .get("matcher")
                    .and_then(Json::as_str)
                    .unwrap_or("compiled")
                    .to_string(),
                entry
                    .get("rule_count")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u64,
                entry
                    .get("ns_per_op")
                    .and_then(Json::as_f64)
                    .expect("validated"),
            )
        })
        .collect())
}

/// Scale knobs that must agree for two reports' ns/op to be comparable
/// at all. `repeat` is deliberately excluded: min-of-N converges on the
/// same underlying latency for any N.
const COMPARABLE_CONFIG: [&str; 4] = ["records", "ops", "seed", "crack_threshold"];

fn check_configs_comparable(old_text: &str, new_text: &str) -> Result<(), String> {
    let old_doc = Json::parse(old_text).expect("validated");
    let new_doc = Json::parse(new_text).expect("validated");
    for field in COMPARABLE_CONFIG {
        let read = |doc: &Json| {
            doc.get("config")
                .and_then(|c| c.get(field))
                .and_then(Json::as_f64)
        };
        let (old, new) = (read(&old_doc), read(&new_doc));
        if old != new {
            return Err(format!(
                "reports are not comparable: config `{field}` is {} in the baseline \
                 but {} in the candidate (ns/op only compares at identical scale)",
                old.map_or("missing".to_string(), |v| v.to_string()),
                new.map_or("missing".to_string(), |v| v.to_string()),
            ));
        }
    }
    Ok(())
}

/// Per-cell ns/op trend gate: pairs `old` and `new` results by
/// `(strategy, workload, batch_size, trees, scheduler, workers,
/// commit, mode, sessions, matcher, rule_count)` and reports every
/// shared cell's latency ratio. Errors on invalid reports, on mismatched
/// experiment scale (records/ops/seed/crack_threshold must agree —
/// ratios between different scales measure the scale, not the code), or
/// when a baseline cell is missing from the candidate (coverage must
/// never silently shrink); cells only present in the candidate are new
/// coverage and pass. The caller decides pass/fail via
/// [`Comparison::passed`].
pub fn compare_reports(
    old_text: &str,
    new_text: &str,
    threshold: f64,
) -> Result<Comparison, String> {
    if !threshold.is_finite() || threshold < 0.0 {
        return Err(format!("threshold must be finite and ≥ 0, got {threshold}"));
    }
    let old_cells = collect_cells(old_text, "baseline")?;
    let new_cells = collect_cells(new_text, "candidate")?;
    check_configs_comparable(old_text, new_text)?;
    let mut cells = Vec::with_capacity(old_cells.len());
    #[allow(clippy::type_complexity)]
    for (
        strategy,
        workload,
        batch_size,
        trees,
        scheduler,
        workers,
        commit,
        mode,
        sessions,
        matcher,
        rule_count,
        old_ns,
    ) in old_cells
    {
        let new_ns = new_cells
            .iter()
            .find(|(s, w, b, t, sched, wk, cm, md, sn, mt, rc, _)| {
                *s == strategy
                    && *w == workload
                    && *b == batch_size
                    && *t == trees
                    && *sched == scheduler
                    && *wk == workers
                    && *cm == commit
                    && *md == mode
                    && *sn == sessions
                    && *mt == matcher
                    && *rc == rule_count
            })
            .map(|&(_, _, _, _, _, _, _, _, _, _, _, ns)| ns)
            .ok_or_else(|| {
                format!(
                    "cell {strategy}/{workload}/K={batch_size}/T={trees}/{scheduler}/W={workers}\
                     /{commit}/{mode}/S={sessions}/{matcher}/R={rule_count} present in baseline, \
                     missing from candidate"
                )
            })?;
        cells.push(CellDelta {
            strategy,
            workload,
            batch_size,
            trees,
            scheduler,
            workers,
            commit,
            mode,
            sessions,
            matcher,
            rule_count,
            old_ns,
            new_ns,
        });
    }
    Ok(Comparison { cells, threshold })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> SweepConfig {
        SweepConfig {
            quick: true,
            experiment: ExperimentConfig {
                records: 64,
                ops: 8,
                crack_threshold: 16,
                seed: 1,
                adaptive_batch: false,
                async_commit: false,
                compiled_match: true,
            },
            batch_sizes: vec![1, 8, 64],
            workloads: vec!['A'],
            fleet_workloads: vec![],
            fleet_trees: vec![],
            steal_trees: vec![],
            steal_workers: vec![],
            commit_workloads: vec![],
            service_sessions: vec![],
            service_threads: 0,
            rule_scale: vec![],
            repeat: 1,
        }
    }

    fn cell(
        workload: char,
        strategy: StrategyKind,
        batch_size: usize,
        trees: usize,
    ) -> BatchRunResult {
        BatchRunResult {
            workload,
            strategy,
            batch_size,
            final_batch_size: batch_size,
            trees,
            ops: 8,
            rewrites: 3,
            total_ns: 12_000,
            maintain_mean_ns: 100.0,
            commit_mean_ns: 50.0,
            peak_strategy_bytes: 2048,
            final_strategy_bytes: 1024,
            scheduler: "sync",
            workers: 0,
            steal_count: 0,
            contended_count: 0,
            commit: "sync",
            worst_window_ns: 3_000,
            mode: "library",
            sessions: 0,
            p99_ns: 0,
            matcher: "compiled",
            rule_count: 0,
            rule_matches: vec![3, 0, 0, 0, 0],
            rule_rewrites: vec![3, 0, 0, 0, 0],
        }
    }

    /// A rule-scale cell: `rule_count` probes through the generic-mode
    /// driver at K=8 on one tree, with the given matcher.
    fn rule_cell(
        workload: char,
        rule_count: usize,
        compiled: bool,
        total_ns: u64,
    ) -> BatchRunResult {
        BatchRunResult {
            total_ns,
            matcher: if compiled { "compiled" } else { "per-rule" },
            rule_count,
            rule_matches: vec![1; 5 + rule_count],
            rule_rewrites: vec![1; 5 + rule_count],
            ..cell(workload, StrategyKind::TreeToaster, 8, 1)
        }
    }

    /// Full rule-scale coverage at the given probe counts: both
    /// workloads × both matchers, with the per-rule baseline 3× slower
    /// once R reaches the speedup bar (so both gates pass by default).
    fn full_rule_cells(counts: &[usize]) -> Vec<BatchRunResult> {
        let mut out = Vec::new();
        for &r in counts {
            let per_rule_ns = if r as u64 >= RULE_SCALE_SPEEDUP_MIN_RULES {
                30_000
            } else {
                10_000
            };
            for workload in ['A', 'G'] {
                out.push(rule_cell(workload, r, true, 10_000));
                out.push(rule_cell(workload, r, false, per_rule_ns));
            }
        }
        out
    }

    /// A daemon cell: `sessions` concurrent sessions on workload S.
    fn service_cell(sessions: usize) -> BatchRunResult {
        BatchRunResult {
            workload: 'S',
            trees: 1,
            total_ns: 50_000,
            scheduler: "steal",
            workers: 2,
            commit: "async",
            worst_window_ns: 9_000,
            mode: "service",
            sessions,
            p99_ns: 6_000,
            ..cell('S', StrategyKind::TreeToaster, 64, 1)
        }
    }

    /// A commit-pipeline twin: `("sync" | "async", total_ns,
    /// worst_window_ns)` on workload I at K=8 over 4 trees.
    fn commit_cell(commit: &'static str, total_ns: u64, worst_window_ns: u64) -> BatchRunResult {
        BatchRunResult {
            batch_size: 8,
            final_batch_size: 8,
            total_ns,
            commit,
            worst_window_ns,
            ..cell('I', StrategyKind::TreeToaster, 8, 4)
        }
    }

    /// A threaded workload-I cell (`workers: None` = dedicated).
    fn pool_cell(workers: Option<usize>, total_ns: u64) -> BatchRunResult {
        BatchRunResult {
            workload: 'I',
            trees: 8,
            total_ns,
            scheduler: if workers.is_some() {
                "steal"
            } else {
                "dedicated"
            },
            workers: workers.unwrap_or(8),
            steal_count: if workers.is_some() { 5 } else { 0 },
            contended_count: 1,
            ..cell('I', StrategyKind::TreeToaster, 1, 8)
        }
    }

    fn fake_results() -> Vec<BatchRunResult> {
        let mut out = Vec::new();
        for strategy in StrategyKind::all() {
            for &batch_size in &[1usize, 8, 64] {
                out.push(cell('A', strategy, batch_size, 1));
            }
        }
        out
    }

    fn fake_fleet_results() -> Vec<BatchRunResult> {
        let mut out = fake_results();
        for workload in ['G', 'H'] {
            for strategy in StrategyKind::all() {
                for &batch_size in &[1usize, 8, 64] {
                    for trees in [1usize, 4] {
                        out.push(cell(workload, strategy, batch_size, trees));
                    }
                }
            }
        }
        out
    }

    fn fleet_sweep() -> SweepConfig {
        let mut s = sweep();
        s.fleet_workloads = vec!['G', 'H'];
        s.fleet_trees = vec![1, 4];
        s
    }

    #[test]
    fn rendered_report_validates() {
        let text = render_report(&sweep(), &fake_results());
        let summary = validate_report(&text).unwrap();
        assert_eq!(summary.results, 15);
        assert_eq!(summary.strategies.len(), 5);
        assert_eq!(summary.batch_sizes, vec![1, 8, 64]);
        assert_eq!(summary.workloads, vec!["A".to_string()]);
        assert_eq!(summary.tree_counts, vec![1]);
        assert_eq!(summary.schedulers, vec!["sync".to_string()]);
        assert_eq!(summary.matchers, vec!["compiled".to_string()]);
    }

    #[test]
    fn steal_gate_passes_and_trips() {
        // Dedicated at 12_000 ns; a 2-worker pool at 10_000 beats it.
        let mut results = fake_fleet_results();
        results.push(pool_cell(None, 12_000));
        results.push(pool_cell(Some(2), 10_000));
        let summary = validate_report(&render_report(&fleet_sweep(), &results)).unwrap();
        assert!(summary.schedulers.iter().any(|s| s == "steal"));
        assert!(summary.schedulers.iter().any(|s| s == "dedicated"));
        // Pool slower but inside the envelope: still passes.
        let mut results = fake_fleet_results();
        results.push(pool_cell(None, 12_000));
        results.push(pool_cell(Some(2), 14_000));
        validate_report(&render_report(&fleet_sweep(), &results)).unwrap();
        // Pool beyond the envelope: the gate names the cell.
        let mut results = fake_fleet_results();
        results.push(pool_cell(None, 12_000));
        results.push(pool_cell(Some(2), 40_000));
        let err = validate_report(&render_report(&fleet_sweep(), &results)).unwrap_err();
        assert!(err.contains("stealing regression"), "{err}");
        // Multiple pool sizes: the best one carries the gate.
        let mut results = fake_fleet_results();
        results.push(pool_cell(None, 12_000));
        results.push(pool_cell(Some(4), 40_000));
        results.push(pool_cell(Some(2), 11_000));
        validate_report(&render_report(&fleet_sweep(), &results)).unwrap();
    }

    #[test]
    fn steal_gate_requires_baseline_and_a_smaller_pool() {
        // Stealing cells without a dedicated baseline are rejected…
        let mut results = fake_fleet_results();
        results.push(pool_cell(Some(2), 10_000));
        let err = validate_report(&render_report(&fleet_sweep(), &results)).unwrap_err();
        assert!(err.contains("dedicated-worker baseline"), "{err}");
        // …and a "pool" as large as the shard count is not stealing.
        let mut results = fake_fleet_results();
        results.push(pool_cell(None, 12_000));
        results.push(pool_cell(Some(8), 10_000));
        let err = validate_report(&render_report(&fleet_sweep(), &results)).unwrap_err();
        assert!(err.contains("smaller than the shard count"), "{err}");
    }

    #[test]
    fn commit_gate_passes_and_trips() {
        // Async at parity on ns/op and ahead on the worst window: passes.
        let mut results = fake_fleet_results();
        results.push(commit_cell("sync", 12_000, 5_000));
        results.push(commit_cell("async", 12_500, 3_000));
        let summary = validate_report(&render_report(&fleet_sweep(), &results)).unwrap();
        assert!(summary.commits.iter().any(|c| c == "async"));
        assert!(summary.commits.iter().any(|c| c == "sync"));
        // ns/op beyond the envelope: the gate names the cell.
        let mut results = fake_fleet_results();
        results.push(commit_cell("sync", 12_000, 5_000));
        results.push(commit_cell("async", 40_000, 3_000));
        let err = validate_report(&render_report(&fleet_sweep(), &results)).unwrap_err();
        assert!(err.contains("commit-pipeline regression"), "{err}");
        // Worst window behind the sync twin on the skewed workload: the
        // tail claim failed even though ns/op is fine.
        let mut results = fake_fleet_results();
        results.push(commit_cell("sync", 12_000, 5_000));
        results.push(commit_cell("async", 12_000, 6_000));
        let err = validate_report(&render_report(&fleet_sweep(), &results)).unwrap_err();
        assert!(err.contains("tail regression"), "{err}");
    }

    #[test]
    fn commit_gate_requires_a_synchronous_twin() {
        let mut results = fake_fleet_results();
        results.push(commit_cell("async", 12_000, 3_000));
        let err = validate_report(&render_report(&fleet_sweep(), &results)).unwrap_err();
        assert!(err.contains("synchronous twin"), "{err}");
    }

    #[test]
    fn commit_coverage_promise_is_enforced() {
        // A config promising commit coverage on I must deliver both
        // modes…
        let mut promised = fleet_sweep();
        promised.commit_workloads = vec!['I'];
        let err = validate_report(&render_report(&promised, &fake_fleet_results())).unwrap_err();
        assert!(err.contains("commit-pipeline coverage"), "{err}");
        let mut results = fake_fleet_results();
        results.push(commit_cell("sync", 12_000, 5_000));
        let err = validate_report(&render_report(&promised, &results)).unwrap_err();
        assert!(err.contains("async"), "{err}");
        // …and does validate once both twins exist.
        results.push(commit_cell("async", 12_500, 3_000));
        validate_report(&render_report(&promised, &results)).unwrap();
        // An empty promise (pre-PR 6 artifacts and sync-only sweeps)
        // demands nothing.
        validate_report(&render_report(&fleet_sweep(), &fake_fleet_results())).unwrap();
    }

    #[test]
    fn compare_keys_cells_by_commit_mode() {
        // The two commit twins share every other key coordinate; the
        // commit axis must keep them apart.
        let mut results = fake_fleet_results();
        results.push(commit_cell("sync", 12_000, 5_000));
        results.push(commit_cell("async", 12_500, 3_000));
        let text = render_report(&fleet_sweep(), &results);
        let cmp = compare_reports(&text, &text, 0.15).unwrap();
        assert!(cmp.passed());
        let piped: Vec<&CellDelta> = cmp.cells.iter().filter(|c| c.commit == "async").collect();
        assert_eq!(piped.len(), 1, "the async twin pairs distinctly");
        assert_eq!(piped[0].workload, "I");
        // Losing the async twin is reported with its commit key.
        let mut lost = fake_fleet_results();
        lost.push(commit_cell("sync", 12_000, 5_000));
        let err = compare_reports(&text, &render_report(&fleet_sweep(), &lost), 0.15).unwrap_err();
        assert!(err.contains("async"), "{err}");
        assert!(err.contains("missing from candidate"), "{err}");
    }

    #[test]
    fn service_cells_validate_and_promise_is_enforced() {
        // A service cell validates without tripping the stealing or
        // commit gates (it is a steal/async cell with no library twin).
        let mut results = fake_fleet_results();
        results.push(service_cell(1000));
        let mut promised = fleet_sweep();
        promised.service_sessions = vec![1000];
        promised.service_threads = 8;
        let summary = validate_report(&render_report(&promised, &results)).unwrap();
        assert_eq!(summary.session_counts, vec![1000]);
        assert!(summary.workloads.iter().any(|w| w == "S"));
        // A config that promises 1000 sessions but delivers none fails…
        let err = validate_report(&render_report(&promised, &fake_fleet_results())).unwrap_err();
        assert!(err.contains("1000 sessions"), "{err}");
        // …and a service cell with an inconsistent tail is rejected.
        let mut bad = fake_fleet_results();
        bad.push(BatchRunResult {
            p99_ns: 99_000, // above the worst op
            ..service_cell(1000)
        });
        let err = validate_report(&render_report(&promised, &bad)).unwrap_err();
        assert!(err.contains("tail is inconsistent"), "{err}");
        // An empty promise (pre-service artifacts) demands nothing.
        validate_report(&render_report(&fleet_sweep(), &fake_fleet_results())).unwrap();
    }

    #[test]
    fn compare_keys_cells_by_mode_and_sessions() {
        let mut results = fake_fleet_results();
        results.push(service_cell(256));
        results.push(service_cell(1000));
        let mut sweep = fleet_sweep();
        sweep.service_sessions = vec![256, 1000];
        let text = render_report(&sweep, &results);
        let cmp = compare_reports(&text, &text, 0.15).unwrap();
        assert!(cmp.passed());
        let svc: Vec<&CellDelta> = cmp.cells.iter().filter(|c| c.mode == "service").collect();
        assert_eq!(svc.len(), 2, "both session counts pair distinctly");
        // Losing the 1000-session cell is reported with its mode key.
        let mut lost = fake_fleet_results();
        lost.push(service_cell(256));
        let mut lost_sweep = fleet_sweep();
        lost_sweep.service_sessions = vec![256];
        let err = compare_reports(&text, &render_report(&lost_sweep, &lost), 0.15).unwrap_err();
        assert!(err.contains("service"), "{err}");
        assert!(err.contains("S=1000"), "{err}");
    }

    #[test]
    fn rule_scale_cells_validate_and_promise_is_enforced() {
        let mut promised = sweep();
        promised.rule_scale = vec![4, 64];
        let mut results = fake_results();
        results.extend(full_rule_cells(&[4, 64]));
        let summary = validate_report(&render_report(&promised, &results)).unwrap();
        assert!(summary.matchers.iter().any(|m| m == "per-rule"));
        assert!(summary.matchers.iter().any(|m| m == "compiled"));
        // A config promising R = {4, 64} but delivering no rule-scale
        // cells fails…
        let err = validate_report(&render_report(&promised, &fake_results())).unwrap_err();
        assert!(err.contains("rule-scale"), "{err}");
        // …and losing one matcher at one count names the hole.
        let mut partial = fake_results();
        partial.extend(
            full_rule_cells(&[4, 64])
                .into_iter()
                .filter(|c| !(c.rule_count == 64 && c.matcher == "per-rule")),
        );
        let err = validate_report(&render_report(&promised, &partial)).unwrap_err();
        assert!(err.contains("per-rule"), "{err}");
        assert!(err.contains("R=64"), "{err}");
        // An empty promise (pre-automaton artifacts) demands nothing.
        validate_report(&render_report(&sweep(), &fake_results())).unwrap();
    }

    #[test]
    fn rule_scale_gates_trip_on_parity_and_speedup() {
        let mut promised = sweep();
        promised.rule_scale = vec![4, 64];
        // Compiled beyond the envelope at the smallest count: the
        // parity gate names the cell.
        let mut results = fake_results();
        results.extend(full_rule_cells(&[4, 64]));
        for r in &mut results {
            if r.rule_count == 4 && r.matcher == "compiled" {
                r.total_ns *= 5;
            }
        }
        let err = validate_report(&render_report(&promised, &results)).unwrap_err();
        assert!(err.contains("parity regression"), "{err}");
        // Per-rule only 1.5× the compiled ns/op at R=64: the automaton
        // failed to deliver its speedup.
        let mut results = fake_results();
        results.extend(full_rule_cells(&[4, 64]));
        for r in &mut results {
            if r.rule_count == 64 && r.matcher == "per-rule" {
                r.total_ns = 15_000;
            }
        }
        let err = validate_report(&render_report(&promised, &results)).unwrap_err();
        assert!(err.contains("speedup missing"), "{err}");
        // At R below the speedup bar only parity applies: a modest gap
        // still validates.
        let mut promised_small = sweep();
        promised_small.rule_scale = vec![4, 16];
        let mut results = fake_results();
        results.extend(full_rule_cells(&[4, 16]));
        validate_report(&render_report(&promised_small, &results)).unwrap();
    }

    #[test]
    fn compare_keys_cells_by_matcher_and_rule_count() {
        // The compiled and per-rule twins share every other key
        // coordinate; the matcher axis must keep them apart.
        let mut promised = sweep();
        promised.rule_scale = vec![4];
        let mut results = fake_results();
        results.extend(full_rule_cells(&[4]));
        let text = render_report(&promised, &results);
        let cmp = compare_reports(&text, &text, 0.15).unwrap();
        assert!(cmp.passed());
        let scaled: Vec<&CellDelta> = cmp.cells.iter().filter(|c| c.rule_count > 0).collect();
        assert_eq!(scaled.len(), 4, "two workloads × two matchers pair");
        assert!(scaled.iter().any(|c| c.matcher == "per-rule"));
        // Losing the per-rule twins is reported with the matcher key
        // (the lost report promises nothing, so it validates alone).
        let mut lost = fake_results();
        lost.extend(
            full_rule_cells(&[4])
                .into_iter()
                .filter(|c| c.matcher != "per-rule"),
        );
        let err = compare_reports(&text, &render_report(&sweep(), &lost), 0.15).unwrap_err();
        assert!(err.contains("per-rule"), "{err}");
        assert!(err.contains("missing from candidate"), "{err}");
    }

    #[test]
    fn fleet_report_validates_and_coverage_is_gated() {
        let text = render_report(&fleet_sweep(), &fake_fleet_results());
        let summary = validate_report(&text).unwrap();
        assert_eq!(summary.tree_counts, vec![1, 4]);
        assert!(summary.workloads.iter().any(|w| w == "G"));
        // Dropping H from a multi-tree report is a coverage failure…
        let no_h: Vec<BatchRunResult> = fake_fleet_results()
            .into_iter()
            .filter(|r| r.workload != 'H')
            .collect();
        let err = validate_report(&render_report(&fleet_sweep(), &no_h)).unwrap_err();
        assert!(err.contains("`H`"), "{err}");
        // …and so is sweeping G at only one tree count.
        let one_count: Vec<BatchRunResult> = fake_fleet_results()
            .into_iter()
            .filter(|r| r.workload != 'G' || r.trees == 4)
            .collect();
        let err = validate_report(&render_report(&fleet_sweep(), &one_count)).unwrap_err();
        assert!(err.contains("two tree counts"), "{err}");
    }

    #[test]
    fn fleet_scaling_gate_trips_on_superlinear_growth() {
        // Inflate the 4-tree G cells past the quadratic envelope
        // (ratio² = 16×) for one strategy.
        let mut results = fake_fleet_results();
        for r in &mut results {
            if r.workload == 'G' && r.trees == 4 && r.strategy.label() == "TT" {
                r.total_ns *= 20;
            }
        }
        let err = validate_report(&render_report(&fleet_sweep(), &results)).unwrap_err();
        assert!(err.contains("fleet scaling regression"), "{err}");
        assert!(err.contains("TT"), "{err}");
        // 8× growth at 4 trees is sublinear per view: passes.
        let mut results = fake_fleet_results();
        for r in &mut results {
            if r.workload == 'G' && r.trees == 4 {
                r.total_ns *= 8;
            }
        }
        validate_report(&render_report(&fleet_sweep(), &results)).unwrap();
    }

    #[test]
    fn compare_pairs_cells_by_tree_count() {
        // Baseline without fleet cells vs candidate with them: the new
        // coverage passes; losing it errors and names the T= key.
        let old = render_report(&sweep(), &fake_results());
        let new = render_report(&fleet_sweep(), &fake_fleet_results());
        let cmp = compare_reports(&old, &new, 0.15).unwrap();
        assert!(cmp.passed());
        assert_eq!(cmp.cells.len(), 15, "only shared single-tree cells pair");
        let err = compare_reports(&new, &old, 0.15).unwrap_err();
        assert!(err.contains("missing from candidate"), "{err}");
        assert!(err.contains("T="), "{err}");
        // Same fleet on both sides: every cell pairs, including trees=4.
        let cmp = compare_reports(&new, &new, 0.15).unwrap();
        assert!(cmp.cells.iter().any(|c| c.trees == 4));
        assert!(cmp.passed());
    }

    #[test]
    fn compare_keys_cells_by_scheduler_and_workers() {
        // A dedicated cell and a stealing cell share (strategy,
        // workload, K, trees): the scheduler axis must keep them apart.
        let mut results = fake_fleet_results();
        results.push(pool_cell(None, 12_000));
        results.push(pool_cell(Some(2), 10_000));
        let text = render_report(&fleet_sweep(), &results);
        let cmp = compare_reports(&text, &text, 0.15).unwrap();
        assert!(cmp.passed());
        let pooled: Vec<&CellDelta> = cmp.cells.iter().filter(|c| c.scheduler != "sync").collect();
        assert_eq!(pooled.len(), 2, "both threaded cells pair distinctly");
        assert!(pooled
            .iter()
            .any(|c| c.scheduler == "dedicated" && c.workers == 8));
        assert!(pooled
            .iter()
            .any(|c| c.scheduler == "steal" && c.workers == 2));
        // Losing just the stealing cell is reported with its full key.
        let mut lost = fake_fleet_results();
        lost.push(pool_cell(None, 12_000));
        lost.push(pool_cell(Some(4), 11_000));
        let err = compare_reports(&text, &render_report(&fleet_sweep(), &lost), 0.15).unwrap_err();
        assert!(err.contains("steal"), "{err}");
        assert!(err.contains("W=2"), "{err}");
    }

    #[test]
    fn validation_rejects_missing_strategy() {
        let results: Vec<BatchRunResult> = fake_results()
            .into_iter()
            .filter(|r| r.strategy.label() != "TT")
            .collect();
        let text = render_report(&sweep(), &results);
        let err = validate_report(&text).unwrap_err();
        assert!(err.contains("TT"), "{err}");
    }

    #[test]
    fn validation_rejects_missing_batch_size() {
        let results: Vec<BatchRunResult> = fake_results()
            .into_iter()
            .filter(|r| r.batch_size != 64)
            .collect();
        let text = render_report(&sweep(), &results);
        assert!(validate_report(&text).unwrap_err().contains("64"));
    }

    #[test]
    fn compare_accepts_improvement_and_flags_regression() {
        let base = fake_results();
        let text_old = render_report(&sweep(), &base);
        // 10% faster everywhere: passes at the default threshold.
        let faster: Vec<BatchRunResult> = base
            .iter()
            .map(|r| BatchRunResult {
                total_ns: r.total_ns * 9 / 10,
                ..r.clone()
            })
            .collect();
        let text_new = render_report(&sweep(), &faster);
        let cmp = compare_reports(&text_old, &text_new, DEFAULT_REGRESSION_THRESHOLD).unwrap();
        assert!(cmp.passed());
        assert_eq!(cmp.cells.len(), base.len());
        assert!(cmp.cells.iter().all(|c| c.ratio() < 1.0));
        // One cell 2x slower: that exact cell is reported.
        let mut slower = base.clone();
        slower[0].total_ns *= 2;
        let text_bad = render_report(&sweep(), &slower);
        let cmp = compare_reports(&text_old, &text_bad, DEFAULT_REGRESSION_THRESHOLD).unwrap();
        assert!(!cmp.passed());
        let regressed: Vec<&CellDelta> = cmp.regressions().collect();
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].strategy, slower[0].strategy.label());
        assert_eq!(regressed[0].batch_size, slower[0].batch_size as u64);
        // …but a generous threshold tolerates it.
        assert!(compare_reports(&text_old, &text_bad, 1.5).unwrap().passed());
    }

    #[test]
    fn compare_rejects_mismatched_scale() {
        let base = fake_results();
        let text_old = render_report(&sweep(), &base);
        // Same cells, different record count: the ratios would measure
        // the scale, so the compare must refuse with a diagnostic.
        let mut bigger = sweep();
        bigger.experiment.records = 4096;
        let text_big = render_report(&bigger, &base);
        let err = compare_reports(&text_old, &text_big, 0.15).unwrap_err();
        assert!(err.contains("records"), "{err}");
        assert!(err.contains("not comparable"), "{err}");
        // A different repeat is fine: min-of-N stays comparable.
        let mut more_passes = sweep();
        more_passes.repeat = 9;
        let text_rep = render_report(&more_passes, &base);
        assert!(compare_reports(&text_old, &text_rep, 0.15).is_ok());
    }

    #[test]
    fn compare_rejects_shrunk_coverage_and_bad_threshold() {
        let base = fake_results();
        let text_old = render_report(&sweep(), &base);
        assert!(compare_reports(&text_old, &text_old, -0.1).is_err());
        assert!(compare_reports("nope", &text_old, 0.15)
            .unwrap_err()
            .contains("baseline"));
        // A candidate sweeping an extra batch size still passes (new
        // coverage is fine)…
        let mut extra = base.clone();
        extra.push(BatchRunResult {
            batch_size: 128,
            ..base[0].clone()
        });
        let mut sweep_extra = sweep();
        sweep_extra.batch_sizes.push(128);
        let text_extra = render_report(&sweep_extra, &extra);
        assert!(compare_reports(&text_old, &text_extra, 0.15)
            .unwrap()
            .passed());
        // …but the reverse direction (baseline has a cell the candidate
        // lost) is an error, not a pass.
        let err = compare_reports(&text_extra, &text_old, 0.15).unwrap_err();
        assert!(err.contains("missing from candidate"), "{err}");
    }

    #[test]
    fn validation_rejects_non_json_and_empty() {
        assert!(validate_report("not json").is_err());
        assert!(validate_report("{}").is_err());
        let empty = render_report(&sweep(), &[]);
        assert!(validate_report(&empty).unwrap_err().contains("empty"));
    }
}
