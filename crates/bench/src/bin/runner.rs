//! `tt-bench` — the machine-readable benchmark runner.
//!
//! Sweeps the figure-12/13 workloads across all five strategies and a
//! configurable batch-size axis — plus the multi-tree fleet workloads
//! G/H/I across a tree-count axis, plus the threaded **scheduler cells**
//! (dedicated workers vs a work-stealing pool on the skewed workload I,
//! swept across a worker-count axis) — writing `BENCH_treetoaster.json`
//! (see [`tt_bench::report`] for the schema). `--quick` runs the CI
//! scale; without it the `TT_*` environment knobs (or explicit flags)
//! set the scale.
//!
//! ```text
//! tt-bench --quick [--out PATH] [--batch-sizes 1,8,64]
//!          [--workloads ABCDF] [--fleet-trees 1,4] [--fleet-workloads GHI]
//!          [--steal-trees 8] [--steal-workers 1,2,4]
//!          [--records N] [--ops N] [--seed N] [--repeat N]
//! ```
//!
//! `--repeat N` runs every cell N times and keeps the fastest run —
//! min-of-N is the noise-robust latency estimator (interference only
//! adds time), which the `tt-bench-check --compare` trend gate needs to
//! hold per-cell thresholds without flapping. Quick mode defaults to 3.
//!
//! `--fleet-trees ""` (empty) skips the fleet sweep entirely;
//! `--steal-trees ""` skips the threaded scheduler cells. For each
//! `--steal-trees` shard count `T` the runner emits one dedicated cell
//! (`T` pinned workers — PR 4's deployment) and one stealing cell per
//! `--steal-workers` size, all on workload I with the TT strategy (the
//! axis under test is the *scheduler*, not the strategy); validation
//! gates the best sub-shard-count pool against the dedicated baseline.
//!
//! `--commit-workloads GI` sweeps the commit-pipeline cells: per
//! workload, one `commit: "sync"` and one `commit: "async"` twin
//! through the mid-backlog epoch driver (TT strategy, K=16 over 4
//! trees — a batch size the fleet cells don't sweep, so the twins'
//! keys never collide with the fleet sweep). Empty disables them;
//! validation then stops demanding them (the coverage promise lives in
//! the emitted config).

use std::process::ExitCode;
use tt_bench::report::{render_report, validate_report, SweepConfig, BENCH_FILE};
use tt_bench::{
    fleet_workloads, paper_workloads, run_commit_pipeline, run_fleet_batched, run_jitd_batched,
    run_rule_scale, run_service, run_steal_pool, BatchRunResult, ExperimentConfig,
};
use tt_jitd::StrategyKind;

/// Ops per epoch for the commit-pipeline twins. Deliberately distinct
/// from the swept `--batch-sizes` {1, 8, 64} so the sync twin cannot
/// collide with a fleet cell's key.
const COMMIT_BATCH: usize = 16;

/// Fleet size for the commit-pipeline twins.
const COMMIT_TREES: usize = 4;

/// Ops per epoch for the rule-scale cells. Matches a swept batch size
/// deliberately — rule-scale cells carry `rule_count > 0`, which keys
/// them apart from every stock-rule cell, so no collision is possible
/// and the mid-size epoch keeps the cells representative.
const RULE_SCALE_BATCH: usize = 8;

/// Workloads the rule-scale axis sweeps: the single-tree YCSB mix (A)
/// and the fleet mix pinned to one tree (G).
const RULE_SCALE_WORKLOADS: [char; 2] = ['A', 'G'];

struct Args {
    quick: bool,
    out: String,
    batch_sizes: Vec<usize>,
    workloads: Vec<char>,
    fleet_trees: Vec<usize>,
    fleet_workloads: Vec<char>,
    steal_trees: Vec<usize>,
    steal_workers: Vec<usize>,
    commit_workloads: Vec<char>,
    service_sessions: Vec<usize>,
    service_threads: usize,
    rule_scale: Vec<usize>,
    records: Option<u64>,
    ops: Option<usize>,
    seed: Option<u64>,
    repeat: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: tt-bench [--quick] [--out PATH] [--batch-sizes 1,8,64] \
         [--workloads ABCDF] [--fleet-trees 1,4] [--fleet-workloads GHI] \
         [--steal-trees 8] [--steal-workers 1,2,4] [--commit-workloads GI] \
         [--service-sessions 64,1000] [--service-threads 8] \
         [--rule-scale 4,16,64] \
         [--records N] [--ops N] [--seed N] [--repeat N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        out: BENCH_FILE.to_string(),
        batch_sizes: vec![1, 8, 64],
        workloads: paper_workloads(),
        fleet_trees: vec![1, 4],
        fleet_workloads: fleet_workloads(),
        steal_trees: vec![8],
        steal_workers: vec![1, 2, 4],
        commit_workloads: vec!['G', 'I'],
        service_sessions: vec![64, 1000],
        service_threads: 8,
        rule_scale: vec![4, 16, 64],
        records: None,
        ops: None,
        seed: None,
        repeat: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                usage()
            })
        };
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = value("--out"),
            "--batch-sizes" => {
                args.batch_sizes = value("--batch-sizes")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if args.batch_sizes.is_empty() || args.batch_sizes.contains(&0) {
                    usage();
                }
            }
            "--workloads" => {
                args.workloads = value("--workloads").chars().collect();
                if args.workloads.is_empty() {
                    usage();
                }
            }
            "--fleet-trees" => {
                let raw = value("--fleet-trees");
                args.fleet_trees = raw
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if args.fleet_trees.contains(&0) {
                    usage();
                }
            }
            "--fleet-workloads" => {
                args.fleet_workloads = value("--fleet-workloads").chars().collect();
            }
            "--steal-trees" => {
                args.steal_trees = value("--steal-trees")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if args.steal_trees.iter().any(|&t| t < 2) {
                    // One shard cannot exhibit stealing (the pool would
                    // just be a dedicated worker).
                    usage();
                }
            }
            "--steal-workers" => {
                args.steal_workers = value("--steal-workers")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if args.steal_workers.is_empty() || args.steal_workers.contains(&0) {
                    usage();
                }
            }
            "--commit-workloads" => {
                args.commit_workloads = value("--commit-workloads")
                    .chars()
                    .filter(|c| !c.is_whitespace())
                    .collect();
            }
            "--service-sessions" => {
                args.service_sessions = value("--service-sessions")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if args.service_sessions.contains(&0) {
                    usage();
                }
            }
            "--rule-scale" => {
                args.rule_scale = value("--rule-scale")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if args.rule_scale.contains(&0) {
                    // R = 0 is the stock rule set; it is every *other*
                    // cell's regime, not a rule-scale point.
                    usage();
                }
            }
            "--service-threads" => {
                args.service_threads = value("--service-threads")
                    .parse()
                    .unwrap_or_else(|_| usage());
                if args.service_threads == 0 {
                    usage();
                }
            }
            "--records" => {
                args.records = Some(value("--records").parse().unwrap_or_else(|_| usage()))
            }
            "--ops" => args.ops = Some(value("--ops").parse().unwrap_or_else(|_| usage())),
            "--seed" => args.seed = Some(value("--seed").parse().unwrap_or_else(|_| usage())),
            "--repeat" => {
                args.repeat = Some(value("--repeat").parse().unwrap_or_else(|_| usage()));
                if args.repeat == Some(0) {
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    args
}

/// One cell of the sweep: trees == 1 with a single-tree workload runs
/// the classic driver, fleet workloads run the forest driver, pool
/// cells run the threaded deployments (`pool: Some(None)` = dedicated
/// workers, `Some(Some(w))` = a stealing pool of `w` threads), commit
/// cells run the mid-backlog pipeline driver (`commit: Some(async?)`),
/// and rule-scale cells run the generic-mode matcher comparison
/// (`rule_scale: Some((R, compiled?))`).
#[derive(Clone, Copy)]
struct CellSpec {
    workload: char,
    strategy: StrategyKind,
    batch_size: usize,
    trees: Option<usize>,
    pool: Option<Option<usize>>,
    commit: Option<bool>,
    service: Option<usize>,
    rule_scale: Option<(usize, bool)>,
}

fn main() -> ExitCode {
    let args = parse_args();
    // Quick mode pins a small, CI-friendly scale; otherwise the usual
    // environment knobs apply. Explicit flags override both.
    let mut experiment = if args.quick {
        ExperimentConfig {
            records: 512,
            ops: 96,
            crack_threshold: 64,
            seed: 42,
            adaptive_batch: false,
            async_commit: false,
            compiled_match: true,
        }
    } else {
        ExperimentConfig::from_env()
    };
    if let Some(records) = args.records {
        experiment.records = records;
    }
    if let Some(ops) = args.ops {
        experiment.ops = ops;
    }
    if let Some(seed) = args.seed {
        experiment.seed = seed;
    }

    // Quick (CI) runs default to min-of-3 so the per-cell trend gate
    // doesn't flap on scheduler noise; full runs default to 1.
    let repeat = args.repeat.unwrap_or(if args.quick { 3 } else { 1 });

    // Fail fast on a pool axis that can never pass the stealing gate:
    // every swept shard count needs at least one pool smaller than it,
    // or the sweep would run to completion only to be rejected by the
    // validator.
    if let Some(&min_trees) = args.steal_trees.iter().min() {
        if !args.steal_workers.iter().any(|&w| w < min_trees) {
            eprintln!(
                "tt-bench: --steal-workers {:?} has no pool smaller than the \
                 smallest --steal-trees shard count {min_trees}; stealing \
                 needs workers < shards",
                args.steal_workers
            );
            usage();
        }
    }

    let fleet_on = !args.fleet_trees.is_empty() && !args.fleet_workloads.is_empty();
    let sweep = SweepConfig {
        quick: args.quick,
        experiment,
        batch_sizes: args.batch_sizes.clone(),
        workloads: args.workloads.clone(),
        fleet_workloads: if fleet_on {
            args.fleet_workloads.clone()
        } else {
            Vec::new()
        },
        fleet_trees: if fleet_on {
            args.fleet_trees.clone()
        } else {
            Vec::new()
        },
        steal_trees: args.steal_trees.clone(),
        steal_workers: args.steal_workers.clone(),
        commit_workloads: args.commit_workloads.clone(),
        service_sessions: args.service_sessions.clone(),
        service_threads: args.service_threads,
        rule_scale: args.rule_scale.clone(),
        repeat,
    };

    let mut specs: Vec<CellSpec> = Vec::new();
    for &workload in &sweep.workloads {
        for strategy in StrategyKind::all() {
            for &batch_size in &sweep.batch_sizes {
                specs.push(CellSpec {
                    workload,
                    strategy,
                    batch_size,
                    trees: None,
                    pool: None,
                    commit: None,
                    service: None,
                    rule_scale: None,
                });
            }
        }
    }
    for &workload in &sweep.fleet_workloads {
        for strategy in StrategyKind::all() {
            for &batch_size in &sweep.batch_sizes {
                for &trees in &sweep.fleet_trees {
                    specs.push(CellSpec {
                        workload,
                        strategy,
                        batch_size,
                        trees: Some(trees),
                        pool: None,
                        commit: None,
                        service: None,
                        rule_scale: None,
                    });
                }
            }
        }
    }
    // Threaded scheduler cells: dedicated baseline + each pool size, on
    // the skewed workload I with the TT strategy (the axis under test
    // is the scheduler; the strategy axis is covered above).
    for &trees in &sweep.steal_trees {
        let mut deployments: Vec<Option<usize>> = vec![None];
        deployments.extend(sweep.steal_workers.iter().map(|&w| Some(w)));
        for pool in deployments {
            specs.push(CellSpec {
                workload: 'I',
                strategy: StrategyKind::TreeToaster,
                batch_size: 1,
                trees: Some(trees),
                pool: Some(pool),
                commit: None,
                service: None,
                rule_scale: None,
            });
        }
    }
    // Commit-pipeline twins: one sync and one async cell per workload,
    // through the mid-backlog epoch driver (TT strategy — the axis
    // under test is the commit discipline).
    for &workload in &sweep.commit_workloads {
        for async_commit in [false, true] {
            specs.push(CellSpec {
                workload,
                strategy: StrategyKind::TreeToaster,
                batch_size: COMMIT_BATCH,
                trees: Some(COMMIT_TREES),
                pool: None,
                commit: Some(async_commit),
                service: None,
                rule_scale: None,
            });
        }
    }
    // Service cells: the tt-serve daemon under N concurrent sessions,
    // driven by the shared op-thread pool (workload S, TT strategy —
    // the axis under test is the serving stack, not the strategy).
    for &sessions in &sweep.service_sessions {
        specs.push(CellSpec {
            workload: 'S',
            strategy: StrategyKind::TreeToaster,
            batch_size: 0, // filled by the harness (the daemon's epoch bound)
            trees: Some(1),
            pool: None,
            commit: None,
            service: Some(sessions),
            rule_scale: None,
        });
    }
    // Rule-scale cells: the paper rules padded with R never-firing
    // probes, through the generic-mode TT driver, once per matcher —
    // the compiled automaton against the per-rule baseline. Keyed by
    // `rule_count`/`matcher`, so they never collide with stock cells.
    for &rule_count in &sweep.rule_scale {
        for workload in RULE_SCALE_WORKLOADS {
            for compiled in [true, false] {
                specs.push(CellSpec {
                    workload,
                    strategy: StrategyKind::TreeToaster,
                    batch_size: RULE_SCALE_BATCH,
                    trees: None,
                    pool: None,
                    commit: None,
                    service: None,
                    rule_scale: Some((rule_count, compiled)),
                });
            }
        }
    }
    eprintln!(
        "tt-bench: {} runs (records={}, ops={}, seed={}, batch sizes {:?}, workloads {:?}, \
         fleet {:?} × trees {:?}, pools {:?} workers over {:?} shards, \
         commit twins {:?}, service sessions {:?} × {} threads, rule scale {:?}, min-of-{})",
        specs.len(),
        experiment.records,
        experiment.ops,
        experiment.seed,
        sweep.batch_sizes,
        sweep.workloads,
        sweep.fleet_workloads,
        sweep.fleet_trees,
        sweep.steal_workers,
        sweep.steal_trees,
        sweep.commit_workloads,
        sweep.service_sessions,
        sweep.service_threads,
        sweep.rule_scale,
        repeat
    );

    // Repeat at the *sweep* level — N full passes, per-cell minimum
    // across passes — so a burst of machine interference degrades one
    // pass of many cells rather than every repeat of one cell. The
    // threaded pool cells are fenced into their own passes *after* all
    // synchronous passes finish: spawning and joining worker fleets
    // perturbs scheduler and cache state enough to skew whichever sync
    // cells run next, and the fence keeps that churn out of the
    // single-threaded measurements entirely. Service cells get a third
    // fence after the pool passes for the same reason, one layer up: a
    // thousand-session daemon leaves the allocator holding megabytes of
    // session state, and interleaving that with the pool cells skews
    // their minima on small machines.
    let phase_of = |spec: &CellSpec| -> usize {
        if spec.service.is_some() {
            2
        } else if spec.pool.is_some() || spec.commit.is_some() {
            1
        } else {
            0
        }
    };
    let mut best: Vec<Option<BatchRunResult>> = vec![None; specs.len()];
    for phase in 0..3usize {
        for round in 0..repeat {
            if repeat > 1 {
                eprintln!(
                    "tt-bench: {} pass {}/{repeat}",
                    ["sync", "pool", "service"][phase],
                    round + 1
                );
            }
            for (cell, spec) in specs.iter().enumerate() {
                // Commit twins spawn threads too: they run in the pool
                // phase, fenced away from the single-threaded cells.
                if phase_of(spec) != phase {
                    continue;
                }
                let r = if let Some((rule_count, compiled)) = spec.rule_scale {
                    run_rule_scale(
                        spec.workload,
                        experiment,
                        spec.batch_size,
                        rule_count,
                        compiled,
                    )
                } else if let Some(sessions) = spec.service {
                    run_service(experiment, sessions, args.service_threads)
                } else {
                    match (spec.trees, spec.pool, spec.commit) {
                        (Some(trees), None, Some(async_commit)) => run_commit_pipeline(
                            spec.workload,
                            spec.strategy,
                            experiment,
                            spec.batch_size,
                            trees,
                            async_commit,
                        ),
                        (None, _, _) => run_jitd_batched(
                            spec.workload,
                            spec.strategy,
                            experiment,
                            spec.batch_size,
                        ),
                        (Some(trees), None, None) => run_fleet_batched(
                            spec.workload,
                            spec.strategy,
                            experiment,
                            spec.batch_size,
                            trees,
                        ),
                        (Some(trees), Some(workers), _) => {
                            run_steal_pool(spec.workload, spec.strategy, experiment, trees, workers)
                        }
                    }
                };
                // Min-of-N applies per metric: total_ns picks the kept
                // run, but the worst-window tail is its own estimator —
                // a preemption spike in an otherwise-fastest pass must
                // not masquerade as the pipeline's intrinsic tail.
                let slot = &mut best[cell];
                match slot {
                    Some(b) => {
                        let worst_window_ns = b.worst_window_ns.min(r.worst_window_ns);
                        let p99_ns = b.p99_ns.min(r.p99_ns);
                        if r.total_ns < b.total_ns {
                            *slot = Some(BatchRunResult {
                                worst_window_ns,
                                p99_ns,
                                ..r
                            });
                        } else {
                            b.worst_window_ns = worst_window_ns;
                            b.p99_ns = p99_ns;
                        }
                    }
                    None => *slot = Some(r),
                }
            }
        }
    }
    let results: Vec<BatchRunResult> = best
        .into_iter()
        .map(|r| r.expect("all cells ran"))
        .collect();
    for r in &results {
        let mut deploy = if r.scheduler == "sync" {
            String::new()
        } else {
            format!("{}:{}", r.scheduler, r.workers)
        };
        if r.commit == "async" {
            deploy.push_str("+async");
        }
        if r.mode == "service" {
            deploy = format!("svc:{}x{}", r.sessions, args.service_threads);
        }
        if r.rule_count > 0 {
            deploy = format!("{}@R{}", r.matcher, r.rule_count);
        }
        eprintln!(
            "  {}/{} K={:<4} T={:<3} {:>12} {:>10.0} ns/op  {:>8} peak bytes  {} rewrites",
            r.workload,
            r.strategy.label(),
            r.batch_size,
            r.trees,
            deploy,
            r.ns_per_op(),
            r.peak_strategy_bytes,
            r.rewrites
        );
    }

    let text = render_report(&sweep, &results);
    // Self-check before writing: the runner must never publish a
    // trajectory its own checker would reject (schema, coverage, and
    // the fleet-scaling gate all run here).
    if let Err(e) = validate_report(&text) {
        eprintln!("tt-bench: internal error, emitted report invalid: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&args.out, &text) {
        eprintln!("tt-bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!("tt-bench: wrote {} ({} results)", args.out, results.len());
    ExitCode::SUCCESS
}
