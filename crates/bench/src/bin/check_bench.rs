//! `tt-bench-check` — CI gate for `BENCH_*.json` trajectories.
//!
//! Two modes:
//!
//! ```text
//! tt-bench-check [FILE]
//! tt-bench-check --compare OLD NEW [--threshold 0.15] [--sync-only]
//! ```
//!
//! The first parses one file, verifies the schema (version, required
//! fields, finite positive latencies), and enforces the coverage
//! contract: all five strategies and the acceptance batch sizes
//! {1, 8, 64}. The second additionally pairs every baseline cell with
//! the candidate's and fails if any cell's ns/op regressed beyond the
//! threshold (default 15%), or if the candidate lost coverage the
//! baseline had. `--sync-only` still requires every baseline cell to
//! exist in the candidate but applies the ratio threshold only to
//! fully synchronous cells (`scheduler` *and* `commit` both `"sync"`):
//! the threaded scheduler cells' wall time scales with core count and
//! thread oversubscription, and the async-commit cells' with the
//! committer thread's scheduling, so cross-machine ratios on them
//! measure the machine, not the code (each report's *internal*
//! stealing and commit gates still cover them, same-machine). Exits
//! non-zero with a diagnostic on any violation, so the CI job fails
//! instead of archiving a malformed (or slower) artifact.

use std::process::ExitCode;
use tt_bench::report::{
    compare_reports, validate_report, BENCH_FILE, DEFAULT_REGRESSION_THRESHOLD,
};

fn usage() -> ! {
    eprintln!(
        "usage: tt-bench-check [FILE]\n       \
         tt-bench-check --compare OLD NEW [--threshold {DEFAULT_REGRESSION_THRESHOLD}] \
         [--sync-only]"
    );
    std::process::exit(2);
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("tt-bench-check: cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

fn validate_one(path: &str) -> ExitCode {
    let text = match read(path) {
        Ok(text) => text,
        Err(code) => return code,
    };
    match validate_report(&text) {
        Ok(summary) => {
            println!(
                "tt-bench-check: {path} OK — {} results, strategies {:?}, \
                 workloads {:?}, batch sizes {:?}, tree counts {:?}, schedulers {:?}, \
                 commit modes {:?}, service sessions {:?}",
                summary.results,
                summary.strategies,
                summary.workloads,
                summary.batch_sizes,
                summary.tree_counts,
                summary.schedulers,
                summary.commits,
                summary.session_counts
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tt-bench-check: {path} INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}

fn compare(old_path: &str, new_path: &str, threshold: f64, sync_only: bool) -> ExitCode {
    let (old_text, new_text) = match (read(old_path), read(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let mut cmp = match compare_reports(&old_text, &new_text, threshold) {
        Ok(cmp) => cmp,
        Err(e) => {
            eprintln!("tt-bench-check: compare failed — {e}");
            return ExitCode::FAILURE;
        }
    };
    if sync_only {
        // Coverage was already enforced over every cell by
        // compare_reports; only the ratio gate narrows to sync cells.
        let before = cmp.cells.len();
        cmp.cells
            .retain(|c| c.scheduler == "sync" && c.commit == "sync");
        eprintln!(
            "tt-bench-check: --sync-only gating {} of {before} cells \
             (threaded scheduler and async-commit cells excluded from \
             the ratio gate)",
            cmp.cells.len()
        );
    }
    let mut improved = 0usize;
    let mut worst: f64 = 0.0;
    for cell in &cmp.cells {
        if cell.ratio() < 1.0 {
            improved += 1;
        }
        worst = worst.max(cell.ratio());
        let mut deploy = if cell.scheduler == "sync" {
            String::new()
        } else {
            format!("{}:{}", cell.scheduler, cell.workers)
        };
        if cell.commit == "async" {
            deploy.push_str("+async");
        }
        if cell.mode == "service" {
            deploy = format!("svc:{}", cell.sessions);
        }
        println!(
            "  {}/{} K={:<4} T={:<3} {:>9} {:>10.0} → {:>10.0} ns/op  ({:+.1}%)",
            cell.workload,
            cell.strategy,
            cell.batch_size,
            cell.trees,
            deploy,
            cell.old_ns,
            cell.new_ns,
            (cell.ratio() - 1.0) * 100.0
        );
    }
    if cmp.passed() {
        println!(
            "tt-bench-check: {new_path} vs {old_path} OK — {} cells, {} improved, \
             worst ratio {:.2} (threshold {:.2})",
            cmp.cells.len(),
            improved,
            worst,
            1.0 + threshold
        );
        ExitCode::SUCCESS
    } else {
        for cell in cmp.regressions() {
            eprintln!(
                "tt-bench-check: REGRESSION {}/{} K={} T={} {}/W={}/{}/{}/S={} — {:.0} → {:.0} \
                 ns/op ({:+.1}%, threshold {:+.1}%)",
                cell.workload,
                cell.strategy,
                cell.batch_size,
                cell.trees,
                cell.scheduler,
                cell.workers,
                cell.commit,
                cell.mode,
                cell.sessions,
                cell.old_ns,
                cell.new_ns,
                (cell.ratio() - 1.0) * 100.0,
                threshold * 100.0
            );
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    if args.first().is_some_and(|a| a == "--compare") {
        let (Some(old_path), Some(new_path)) = (args.get(1), args.get(2)) else {
            usage();
        };
        let mut threshold = DEFAULT_REGRESSION_THRESHOLD;
        let mut sync_only = false;
        // Strict flag parsing: a typo'd extra flag must fail loudly
        // rather than silently degrade the gate.
        let mut i = 3;
        while i < args.len() {
            match args[i].as_str() {
                "--threshold" => {
                    threshold = match args.get(i + 1).and_then(|v| v.parse().ok()) {
                        Some(t) => t,
                        None => usage(),
                    };
                    i += 2;
                }
                "--sync-only" => {
                    sync_only = true;
                    i += 1;
                }
                _ => usage(),
            }
        }
        return compare(old_path, new_path, threshold, sync_only);
    }
    if args.len() > 1 {
        usage();
    }
    let path = args
        .first()
        .cloned()
        .unwrap_or_else(|| BENCH_FILE.to_string());
    validate_one(&path)
}
