//! `tt-bench-check` — CI gate for `BENCH_*.json` trajectories.
//!
//! Parses the file, verifies the schema (version, required fields,
//! finite positive latencies), and enforces the coverage contract: all
//! five strategies and the acceptance batch sizes {1, 8, 64}. Exits
//! non-zero with a diagnostic on any violation, so the CI job fails
//! instead of archiving a malformed artifact.

use std::process::ExitCode;
use tt_bench::report::{validate_report, BENCH_FILE};

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| BENCH_FILE.to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("tt-bench-check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_report(&text) {
        Ok(summary) => {
            println!(
                "tt-bench-check: {path} OK — {} results, strategies {:?}, \
                 workloads {:?}, batch sizes {:?}",
                summary.results, summary.strategies, summary.workloads, summary.batch_sizes
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tt-bench-check: {path} INVALID — {e}");
            ExitCode::FAILURE
        }
    }
}
