//! Criterion micro-benchmarks for the core operations every figure's
//! numbers are built from: pattern evaluation, view updates, generalized
//! multiset algebra, per-strategy `find_one`, and one full reorganization
//! step per strategy.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;
use treetoaster_core::{MatchCore, TreeToasterEngine};
use tt_ast::{GenMultiset, NodeId, Record};
use tt_jitd::{jitd_schema, paper_rules, Jitd, JitdIndex, RuleConfig, StrategyKind};
use tt_pattern::matches;

fn cracked_index(records: i64, threshold: usize) -> JitdIndex {
    let data: Vec<Record> = (0..records).map(|k| Record::new(k, k)).collect();
    let mut idx = JitdIndex::load(data);
    // Crack it via a one-off naive loop.
    let schema = jitd_schema();
    let rules = Arc::new(paper_rules(
        &schema,
        RuleConfig {
            crack_threshold: threshold,
        },
    ));
    let mut engine = TreeToasterEngine::new(rules.clone());
    engine.rebuild(idx.ast());
    let mut tick = 0;
    while let Some(site) = engine.find_one(idx.ast(), 0) {
        let rule = rules.get(0);
        let bindings = tt_pattern::match_node(idx.ast(), site, &rule.pattern).unwrap();
        engine.before_replace(idx.ast(), site, Some((0, &bindings)));
        let applied = rule.apply(idx.ast_mut(), site, &bindings, tick);
        tick += 1;
        let ctx = treetoaster_core::ReplaceCtx {
            old_root: applied.old_root,
            new_root: applied.new_root,
            removed: &applied.removed,
            inserted: applied.inserted(),
            parent_update: applied.parent_update.as_ref(),
            rule: Some(treetoaster_core::RuleFired {
                rule: 0,
                bindings: &bindings,
                applied: &applied,
            }),
        };
        engine.after_replace(idx.ast(), &ctx);
    }
    idx
}

fn bench_pattern_eval(c: &mut Criterion) {
    let idx = cracked_index(4096, 64);
    let schema = jitd_schema();
    let rules = paper_rules(
        &schema,
        RuleConfig {
            crack_threshold: 64,
        },
    );
    let pattern = &rules.get(1).pattern; // PushDownSingletonBtreeLeft
    let nodes: Vec<NodeId> = idx.ast().descendants(idx.ast().root()).collect();
    c.bench_function("pattern_eval_per_node", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &n in &nodes {
                if matches(idx.ast(), n, pattern) {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_multiset_ops(c: &mut Criterion) {
    c.bench_function("multiset_union_1k", |b| {
        let a: GenMultiset = (0..1000).map(|i| (NodeId::from_index(i), 1i64)).collect();
        let d: GenMultiset = (500..1500)
            .map(|i| (NodeId::from_index(i), -1i64))
            .collect();
        b.iter(|| a.union(&d))
    });
}

fn bench_view_update(c: &mut Criterion) {
    use treetoaster_core::MatchView;
    c.bench_function("view_add_remove", |b| {
        let mut view = MatchView::new();
        for i in 0..10_000u32 {
            view.add(NodeId::from_index(i), 1);
        }
        let mut i = 0u32;
        b.iter(|| {
            let n = NodeId::from_index(i % 10_000);
            view.add(n, -1);
            view.add(n, 1);
            i = i.wrapping_add(1);
            view.any()
        })
    });
}

fn bench_find_one(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_one_after_insert");
    for kind in StrategyKind::all() {
        group.bench_function(kind.label(), |b| {
            b.iter_batched(
                || {
                    let data: Vec<Record> = (0..2048).map(|k| Record::new(k, k)).collect();
                    let mut jitd = Jitd::new(
                        kind,
                        RuleConfig {
                            crack_threshold: 64,
                        },
                        data,
                    );
                    jitd.reorganize_until_quiet(u64::MAX);
                    jitd.execute(&tt_ycsb::Op::Insert {
                        key: 5000,
                        value: 1,
                    });
                    jitd
                },
                // One search for a push-down candidate: the quantity
                // Figure 9 plots.
                |mut jitd| {
                    let fired = jitd.reorganize_step(1).fired || jitd.reorganize_step(2).fired;
                    criterion::black_box(fired)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_maintenance(c: &mut Criterion) {
    // One write (graft) + the push-down rewrites it enables: the
    // maintenance work Figure 12 reports, per strategy.
    let mut group = c.benchmark_group("maintenance_per_write");
    for kind in StrategyKind::ivm_set() {
        group.bench_function(kind.label(), |b| {
            b.iter_batched(
                || {
                    let data: Vec<Record> = (0..2048).map(|k| Record::new(k, k)).collect();
                    let mut jitd = Jitd::new(
                        kind,
                        RuleConfig {
                            crack_threshold: 64,
                        },
                        data,
                    );
                    jitd.reorganize_until_quiet(u64::MAX);
                    jitd
                },
                |mut jitd| {
                    jitd.execute(&tt_ycsb::Op::Update { key: 777, value: 1 });
                    jitd.reorganize_until_quiet(64);
                    criterion::black_box(jitd.stats.steps)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_pattern_eval, bench_multiset_ops, bench_view_update, bench_find_one, bench_maintenance
}
criterion_main!(benches);
