//! Figure 10: relative total (search + maintenance) cost per
//! reorganization step, by rewrite rule, for the four maintained
//! strategies (Naive has no maintained state and is omitted, as in the
//! paper).

use tt_bench::{ns, paper_workloads, run_jitd, ExperimentConfig};
use tt_jitd::StrategyKind;
use tt_metrics::{Csv, Table};

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("Figure 10 — total search + maintenance latency per reorganization step (ns)");
    println!(
        "(records={}, ops={}, threshold={}, seed={})\n",
        cfg.records, cfg.ops, cfg.crack_threshold, cfg.seed
    );

    let mut csv = Csv::new(["workload", "rule", "strategy", "mean_ns", "p95_ns", "n"]);
    for wl in paper_workloads() {
        println!("== Workload {wl} ==");
        let runs: Vec<_> = StrategyKind::ivm_set()
            .into_iter()
            .map(|s| run_jitd(wl, s, cfg))
            .collect();
        let rule_names = [
            "CrackArray",
            "PushDownSingletonBtreeLeft",
            "PushDownSingletonBtreeRight",
            "PushDownDontDeleteSingletonBtreeLeft",
            "PushDownDontDeleteSingletonBtreeRight",
        ];
        let mut table = Table::new(["rule", "Index", "Classic", "DBT", "TT"]);
        for (rid, rule) in rule_names.iter().enumerate() {
            let mut cells = vec![rule.to_string()];
            for run in &runs {
                let cell = match &run.total[rid] {
                    Some(s) => {
                        csv.row([
                            wl.to_string(),
                            rule.to_string(),
                            run.strategy.label().to_string(),
                            format!("{:.0}", s.mean),
                            format!("{:.0}", s.p95),
                            s.n.to_string(),
                        ]);
                        ns(s.mean)
                    }
                    None => "-".to_string(),
                };
                cells.push(cell);
            }
            table.row(cells);
        }
        table.print();
        println!();
    }
    match csv.write_to_figures_dir("fig10_total_latency") {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
