//! Figure 2: the latency/memory quadrant — measured, not conceptual.
//! One representative workload (A) summarized per strategy, normalized
//! against Naive (latency) and DBT (memory), showing TreeToaster in the
//! fast & small corner.

use tt_bench::{run_jitd, ExperimentConfig};
use tt_jitd::StrategyKind;
use tt_metrics::{Csv, Table};

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("Figure 2 — latency vs. memory quadrant (workload A)");
    println!(
        "(records={}, ops={}, threshold={}, seed={})\n",
        cfg.records, cfg.ops, cfg.crack_threshold, cfg.seed
    );

    let runs: Vec<_> = StrategyKind::all()
        .into_iter()
        .map(|s| run_jitd('A', s, cfg))
        .collect();
    let naive_latency = runs[0].mean_search_ns().max(1.0);
    let dbt_memory = runs
        .iter()
        .find(|r| r.strategy == StrategyKind::Dbt)
        .map(|r| r.memory_pages.max(1))
        .unwrap_or(1);

    let mut table = Table::new([
        "strategy",
        "search_ns",
        "rel_latency",
        "memory_pages",
        "rel_memory",
        "quadrant",
    ]);
    let mut csv = Csv::new(["strategy", "search_ns", "memory_pages"]);
    for r in &runs {
        let latency = r.mean_search_ns();
        let rel_l = latency / naive_latency;
        let rel_m = r.memory_pages as f64 / dbt_memory as f64;
        let quadrant = match (rel_l < 0.5, rel_m < 0.5) {
            (true, true) => "fast & small   <- the TreeToaster corner",
            (true, false) => "fast & large   <- the bolt-on corner",
            (false, true) => "slow & small   <- the iterative-search corner",
            (false, false) => "slow & large",
        };
        table.row([
            r.strategy.label().to_string(),
            format!("{latency:.0}"),
            format!("{rel_l:.3}"),
            r.memory_pages.to_string(),
            format!("{rel_m:.3}"),
            quadrant.to_string(),
        ]);
        csv.row([
            r.strategy.label().to_string(),
            format!("{latency:.0}"),
            r.memory_pages.to_string(),
        ]);
    }
    table.print();
    match csv.write_to_figures_dir("fig02_quadrant") {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
