//! Figure 12: average IVM maintenance-operation latency per workload and
//! maintained strategy (rewrite-driven plus operation-driven maintenance
//! pooled). The paper shows TreeToaster's maintenance at or below the
//! bolt-ons on every workload, with the complex/update-heavy loads (A, F)
//! showing about half the bolt-on latency.

use tt_bench::{paper_workloads, run_jitd, ExperimentConfig};
use tt_jitd::StrategyKind;
use tt_metrics::{Csv, Table};

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("Figure 12 — average IVM operational latency (ns)");
    println!(
        "(records={}, ops={}, threshold={}, seed={})\n",
        cfg.records, cfg.ops, cfg.crack_threshold, cfg.seed
    );

    let mut table = Table::new(["workload", "Index", "Classic", "DBT", "TT"]);
    let mut csv = Csv::new([
        "workload",
        "strategy",
        "mean_ns",
        "median_ns",
        "p95_ns",
        "n",
    ]);
    for wl in paper_workloads() {
        let mut cells = vec![wl.to_string()];
        for strategy in StrategyKind::ivm_set() {
            let r = run_jitd(wl, strategy, cfg);
            match &r.ivm {
                Some(s) => {
                    cells.push(format!("{:.0}", s.mean));
                    csv.row([
                        wl.to_string(),
                        strategy.label().to_string(),
                        format!("{:.0}", s.mean),
                        format!("{:.0}", s.median),
                        format!("{:.0}", s.p95),
                        s.n.to_string(),
                    ]);
                }
                None => cells.push("-".to_string()),
            }
        }
        table.row(cells);
    }
    table.print();
    match csv.write_to_figures_dir("fig12_ivm_latency") {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
