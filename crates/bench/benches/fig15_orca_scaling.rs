//! Figure 15: Orca-style rewrite and search times vs. AST size on the
//! UNION-ALL-doubling antipattern.
//!
//! Orca's task-queue scheduling and promise-before-build discipline keep
//! its search *share* far lower than Catalyst's (paper: 5–20%, dropping
//! toward ~5%), though absolute search time still scales with the AST.

use tt_bench::env_u64;
use tt_metrics::{Csv, Table};
use tt_queryopt::antipattern::union_doubling;
use tt_queryopt::orca::optimize_orca;

fn main() {
    let max_level = env_u64("TT_ORCA_MAX", 5) as usize;
    println!("Figure 15 — Orca-style optimizer on the UNION-doubling antipattern");
    println!("(levels 1..={max_level})\n");

    let mut table = Table::new([
        "level",
        "ast_size",
        "log10_size",
        "total_ms",
        "search_ms",
        "search_%",
        "tasks",
    ]);
    let mut csv = Csv::new([
        "level",
        "ast_size",
        "total_ns",
        "search_ns",
        "effective_ns",
        "memo_ns",
        "search_fraction",
        "tasks",
    ]);
    {
        let mut warm = union_doubling(2);
        let _ = optimize_orca(&mut warm, u64::MAX);
    }
    let reps = env_u64("TT_SCALING_REPS", 3);
    for level in 1..=max_level {
        let mut best: Option<tt_queryopt::orca::OrcaBreakdown> = None;
        let mut size = 0;
        for _ in 0..reps {
            let mut ast = union_doubling(level);
            size = ast.subtree_size(ast.root());
            let candidate = optimize_orca(&mut ast, u64::MAX);
            if best.is_none_or(|b| candidate.total_ns() < b.total_ns()) {
                best = Some(candidate);
            }
        }
        let bd = best.expect("at least one rep");
        table.row([
            level.to_string(),
            size.to_string(),
            format!("{:.2}", (size as f64).log10()),
            format!("{:.2}", bd.total_ns() as f64 / 1e6),
            format!("{:.2}", bd.search_ns as f64 / 1e6),
            format!("{:.0}%", 100.0 * bd.search_fraction()),
            bd.tasks.to_string(),
        ]);
        csv.row([
            level.to_string(),
            size.to_string(),
            bd.total_ns().to_string(),
            bd.search_ns.to_string(),
            bd.effective_ns.to_string(),
            bd.memo_ns.to_string(),
            format!("{:.4}", bd.search_fraction()),
            bd.tasks.to_string(),
        ]);
    }
    table.print();
    println!("\nPaper: Orca spends 5-20% of its time in search, dropping toward ~5%");
    println!("as the AST grows — lower than Catalyst, but still scaling with size.");
    match csv.write_to_figures_dir("fig15_orca_scaling") {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
