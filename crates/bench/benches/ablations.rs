//! Ablations beyond the paper's headline figures (DESIGN.md §8):
//!
//! 1. **Inlining (§6.1)** — TreeToaster with the Algorithm-3 inlined
//!    plans vs. the Definition-6 maximal-search-set path only.
//! 2. **Catalyst + TreeToaster** — what IVM buys a query optimizer: the
//!    Figure-1 breakdown under naive scanning vs. TreeToaster views.
//! 3. **View structure** — the O(1) swap-remove view against an ordered
//!    BTree view (§4's "arbitrary element as fast as possible" design
//!    point).
//! 4. **Ancestor depth** — generic maintenance cost as pattern depth
//!    `D(q)` grows (the Definition-6 search set widens with depth).

use std::sync::Arc;
use treetoaster_core::engine::MaintenanceMode;
use treetoaster_core::{MatchCore, ReplaceCtx, RuleFired, TreeToasterEngine};
use tt_ast::Record;
use tt_bench::{env_u64, ExperimentConfig};
use tt_jitd::{jitd_schema, paper_rules, JitdIndex, RuleConfig};
use tt_metrics::{now_ns, Csv, Table};
use tt_pattern::match_node;
use tt_queryopt::catalyst::{optimize, SearchMode};
use tt_queryopt::tpch;

/// Runs a cracking session with a TreeToaster engine in the given mode,
/// returning (total maintenance ns, rewrites applied).
fn run_tt_mode(mode: MaintenanceMode, records: u64, threshold: usize) -> (u64, u64) {
    let schema = jitd_schema();
    let rules = Arc::new(paper_rules(
        &schema,
        RuleConfig {
            crack_threshold: threshold,
        },
    ));
    let data: Vec<Record> = (0..records as i64).map(|k| Record::new(k, k)).collect();
    let mut index = JitdIndex::load(data);
    let mut engine = TreeToasterEngine::with_mode(rules.clone(), mode);
    engine.rebuild(index.ast());
    let mut maintain_ns = 0u64;
    let mut applied = 0u64;
    let mut tick = 0u64;
    let mut rounds = 0u32;
    // Crack to quiescence, then a write burst with push-downs.
    loop {
        rounds += 1;
        let mut fired = false;
        for (rid, rule) in rules.iter() {
            while let Some(site) = engine.find_one(index.ast(), rid) {
                let bindings = match_node(index.ast(), site, &rule.pattern).unwrap();
                let m0 = now_ns();
                engine.before_replace(index.ast(), site, Some((rid, &bindings)));
                maintain_ns += now_ns() - m0;
                let result = rule.apply(index.ast_mut(), site, &bindings, tick);
                tick += 1;
                let ctx = ReplaceCtx {
                    old_root: result.old_root,
                    new_root: result.new_root,
                    removed: &result.removed,
                    inserted: result.inserted(),
                    parent_update: result.parent_update.as_ref(),
                    rule: Some(RuleFired {
                        rule: rid,
                        bindings: &bindings,
                        applied: &result,
                    }),
                };
                let m1 = now_ns();
                engine.after_replace(index.ast(), &ctx);
                maintain_ns += now_ns() - m1;
                applied += 1;
                fired = true;
            }
        }
        if !fired && rounds > 50 {
            break;
        }
        // Write bursts for the first 50 rounds keep push-downs flowing.
        if rounds <= 50 {
            for i in 0..32 {
                let created = index.wrap_insert(records as i64 + applied as i64 * 37 + i, i);
                let m0 = now_ns();
                engine.on_graft(index.ast(), &created);
                maintain_ns += now_ns() - m0;
            }
        }
        if applied > 200_000 {
            break;
        }
    }
    (maintain_ns, applied)
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("Ablation 1 — TreeToaster maintenance: inlined (Alg. 3) vs. maximal search set\n");
    let mut table = Table::new(["mode", "maintenance_ms", "rewrites", "ns_per_rewrite"]);
    let mut csv = Csv::new(["mode", "maintain_ns", "rewrites"]);
    for (name, mode) in [
        ("inlined", MaintenanceMode::Inlined),
        ("generic", MaintenanceMode::Generic),
    ] {
        let (ns_total, applied) = run_tt_mode(mode, cfg.records, cfg.crack_threshold);
        table.row([
            name.to_string(),
            format!("{:.2}", ns_total as f64 / 1e6),
            applied.to_string(),
            format!("{:.0}", ns_total as f64 / applied.max(1) as f64),
        ]);
        csv.row([name.to_string(), ns_total.to_string(), applied.to_string()]);
    }
    table.print();
    let _ = csv.write_to_figures_dir("ablation_inlining");

    println!("\nAblation 2 — Catalyst breakdown: naive scan vs. TreeToaster views (TPC-H mix)\n");
    let mut table = Table::new([
        "mode",
        "search_ms",
        "ineffective_ms",
        "effective_ms",
        "fixpoint_ms",
        "maintain_ms",
        "total_ms",
    ]);
    let mut csv = Csv::new([
        "mode",
        "search_ns",
        "ineffective_ns",
        "effective_ns",
        "fixpoint_ns",
        "maintain_ns",
    ]);
    let reps = env_u64("TT_FIG1_REPS", 3);
    for (name, mode) in [
        ("naive", SearchMode::NaiveScan),
        ("treetoaster", SearchMode::TreeToasterViews),
    ] {
        let (mut s, mut i, mut e, mut f, mut m) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for q in 1..=22 {
            for rep in 0..reps {
                let mut ast = tpch::build_query(q, cfg.seed + rep);
                let bd = optimize(&mut ast, mode, 100);
                s += bd.search_ns;
                i += bd.ineffective_ns;
                e += bd.effective_ns;
                f += bd.fixpoint_ns;
                m += bd.maintain_ns;
            }
        }
        let ms = |x: u64| format!("{:.2}", x as f64 / 1e6);
        table.row([
            name.to_string(),
            ms(s),
            ms(i),
            ms(e),
            ms(f),
            ms(m),
            ms(s + i + e + f + m),
        ]);
        csv.row([
            name.to_string(),
            s.to_string(),
            i.to_string(),
            e.to_string(),
            f.to_string(),
            m.to_string(),
        ]);
    }
    table.print();
    match csv.write_to_figures_dir("ablation_catalyst_tt") {
        Ok(path) => println!("\nCSVs written next to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }

    ablation_view_structure();
    ablation_ancestor_depth(cfg.records.min(8192));
}

/// Ablation 3: 100k membership churn + pops against both view layouts.
fn ablation_view_structure() {
    use treetoaster_core::{MatchView, OrderedMatchView};
    use tt_ast::NodeId;
    println!("\nAblation 3 — view structure: swap-remove (O(1)) vs. BTree-ordered (O(log n))\n");
    let churn = 200_000u32;
    let mut table = Table::new(["structure", "churn_ops", "total_ms", "ns_per_op"]);
    {
        let mut view = MatchView::new();
        let t0 = now_ns();
        for i in 0..churn {
            view.add(NodeId::from_index(i % 4096), 1);
            let _ = view.any();
            view.add(NodeId::from_index(i % 4096), -1);
        }
        let dt = now_ns() - t0;
        table.row([
            "swap-remove".to_string(),
            churn.to_string(),
            format!("{:.2}", dt as f64 / 1e6),
            format!("{:.1}", dt as f64 / churn as f64),
        ]);
    }
    {
        let mut view = OrderedMatchView::new();
        let t0 = now_ns();
        for i in 0..churn {
            view.add(NodeId::from_index(i % 4096), 1);
            let _ = view.any();
            view.add(NodeId::from_index(i % 4096), -1);
        }
        let dt = now_ns() - t0;
        table.row([
            "btree-ordered".to_string(),
            churn.to_string(),
            format!("{:.2}", dt as f64 / 1e6),
            format!("{:.1}", dt as f64 / churn as f64),
        ]);
    }
    table.print();
}

/// Ablation 4: generic-path maintenance cost vs. pattern depth. A family
/// of chain patterns `DeleteSingleton(DeleteSingleton(…(Any)))` of depth
/// 1..=5 is registered as views while tombstone chains are built and
/// collapsed; deeper patterns force wider Definition-6 search sets.
fn ablation_ancestor_depth(records: u64) {
    use treetoaster_core::generator::{acopy, gen, reuse};
    use treetoaster_core::{RewriteRule, RuleSet, TreeToasterEngine};
    use tt_ast::Record;
    use tt_jitd::JitdIndex;
    use tt_pattern::dsl as p;
    use tt_pattern::{match_node, Pattern};

    println!("\nAblation 4 — maintenance cost vs. pattern depth D(q) (generic path)\n");
    let mut table = Table::new(["depth", "maintain_ms", "rewrites", "ns_per_rewrite"]);
    for depth in 1..=5usize {
        let schema = tt_jitd::jitd_schema();
        // A depth-`depth` chain of DeleteSingleton wrappers; the rewrite
        // collapses the outermost pair into one (dedupe-style), so the
        // chain shrinks and the run terminates.
        let mut spec = p::any_as("x");
        for level in 0..depth {
            spec = p::node("DeleteSingleton", &format!("d{level}"), [spec], p::tru());
        }
        let pattern = Pattern::compile(&schema, spec);
        assert_eq!(pattern.depth(), depth);
        // Collapse: keep the innermost wrapper only.
        let innermost = format!("d{}", 0);
        let generator = if depth == 1 {
            reuse("x")
        } else {
            gen(
                "DeleteSingleton",
                [("key", acopy(&innermost, "key"))],
                [reuse("x")],
            )
        };
        let rule = RewriteRule::new("CollapseTombstones", &schema, pattern, generator);
        let rules = Arc::new(RuleSet::from_rules(vec![rule]));
        // Force the generic path: the rule drops tombstone wrappers whose
        // keys differ, which is fine for this cost measurement.
        let mut engine = TreeToasterEngine::with_mode(rules.clone(), MaintenanceMode::Generic);

        let data: Vec<Record> = (0..records as i64).map(|k| Record::new(k, k)).collect();
        let mut index = JitdIndex::load(data);
        // Stack tombstone chains.
        for k in 0..200 {
            for _ in 0..=depth {
                index.wrap_delete(k);
            }
        }
        engine.rebuild(index.ast());
        let mut maintain_ns = 0u64;
        let mut applied = 0u64;
        let mut tick = 0u64;
        while let Some(site) = engine.find_one(index.ast(), 0) {
            let rule = rules.get(0);
            let bindings = match_node(index.ast(), site, &rule.pattern).unwrap();
            let m0 = now_ns();
            engine.before_replace(index.ast(), site, Some((0, &bindings)));
            maintain_ns += now_ns() - m0;
            let result = rule.apply(index.ast_mut(), site, &bindings, tick);
            tick += 1;
            let ctx = ReplaceCtx {
                old_root: result.old_root,
                new_root: result.new_root,
                removed: &result.removed,
                inserted: result.inserted(),
                parent_update: result.parent_update.as_ref(),
                rule: Some(RuleFired {
                    rule: 0,
                    bindings: &bindings,
                    applied: &result,
                }),
            };
            let m1 = now_ns();
            engine.after_replace(index.ast(), &ctx);
            maintain_ns += now_ns() - m1;
            applied += 1;
            if applied > 100_000 {
                break;
            }
        }
        table.row([
            depth.to_string(),
            format!("{:.2}", maintain_ns as f64 / 1e6),
            applied.to_string(),
            format!("{:.0}", maintain_ns as f64 / applied.max(1) as f64),
        ]);
    }
    table.print();
    println!("\nDeeper patterns re-check more ancestors per rewrite (Definition 6), so the");
    println!("per-rewrite maintenance cost grows with D(q).");
}
