//! Figure 9: relative average search latency, by rewrite rule and
//! strategy, on YCSB workloads A, B, C, D, F.
//!
//! The paper's claim: Naive is worst everywhere, the label index beats it
//! but re-checks constraints per candidate, and the three IVM approaches
//! answer in near-constant time — with TreeToaster matching or beating
//! the bolt-ons.

use tt_bench::{ns, paper_workloads, run_jitd, ExperimentConfig};
use tt_jitd::StrategyKind;
use tt_metrics::{Csv, Table};

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("Figure 9 — average search latency per rule (ns)");
    println!(
        "(records={}, ops={}, threshold={}, seed={})\n",
        cfg.records, cfg.ops, cfg.crack_threshold, cfg.seed
    );

    let mut csv = Csv::new(["workload", "rule", "strategy", "mean_ns", "p95_ns", "n"]);
    for wl in paper_workloads() {
        println!("== Workload {wl} ==");
        let runs: Vec<_> = StrategyKind::all()
            .into_iter()
            .map(|s| run_jitd(wl, s, cfg))
            .collect();
        let rule_names = [
            "CrackArray",
            "PushDownSingletonBtreeLeft",
            "PushDownSingletonBtreeRight",
            "PushDownDontDeleteSingletonBtreeLeft",
            "PushDownDontDeleteSingletonBtreeRight",
        ];
        let mut table = Table::new(["rule", "Naive", "Index", "Classic", "DBT", "TT"]);
        for (rid, rule) in rule_names.iter().enumerate() {
            let mut cells = vec![rule.to_string()];
            for run in &runs {
                let cell = match &run.search[rid] {
                    Some(s) => {
                        csv.row([
                            wl.to_string(),
                            rule.to_string(),
                            run.strategy.label().to_string(),
                            format!("{:.0}", s.mean),
                            format!("{:.0}", s.p95),
                            s.n.to_string(),
                        ]);
                        ns(s.mean)
                    }
                    None => "-".to_string(),
                };
                cells.push(cell);
            }
            table.row(cells);
        }
        table.print();
        println!();
    }
    match csv.write_to_figures_dir("fig09_search_latency") {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
