//! `view_ops` — microbenchmark of the view backends' primitive ops.
//!
//! The dense storage layer (`tt_ast::dense`) replaced hashed `NodeId`
//! maps under both view structures; this target isolates the primitives
//! every maintenance strategy composes — membership `add` (the 0→1
//! crossing), membership `remove` (1→0), `any`, and the epoch-commit
//! `apply_delta` — on both backends, across a compact id range
//! (everything on a few pages, the steady-state case) and a sparse
//! range (page-miss pressure).
//!
//! Run: `cargo bench --bench view_ops` (env `TT_VIEW_OPS_N` scales the
//! op count). The CI bench-smoke job compiles this target on every push.

use treetoaster_core::{MatchView, OrderedMatchView};
use tt_ast::NodeId;
use tt_bench::env_u64;
use tt_metrics::{now_ns, Table};

/// Ids per churn pass (one insert pass then one remove pass over this
/// window, so every measured op crosses the membership boundary).
const WINDOW: u64 = 2048;

/// Resident-member ids: the low half of the compact window, or a
/// multiplicative stride over ~1 Mi ids for the sparse layout.
fn resident_id(compact: bool, i: u64) -> NodeId {
    if compact {
        NodeId::from_index((i % WINDOW) as u32)
    } else {
        NodeId::from_index(((i.wrapping_mul(7919)) % (1 << 20)) as u32)
    }
}

/// Churn ids, disjoint from the resident set (compact: the upper half of
/// the 4 Ki window; sparse: a stride offset far from the resident one,
/// where the rare collision only turns one op into a count bump).
fn churn_id(compact: bool, i: u64) -> NodeId {
    if compact {
        NodeId::from_index((WINDOW + (i % WINDOW)) as u32)
    } else {
        NodeId::from_index((((i + 500_009).wrapping_mul(7919)) % (1 << 20)) as u32)
    }
}

/// One measured cell: `ops` executions of a closure, reported as ns/op.
fn measure(mut op: impl FnMut(), ops: u64) -> f64 {
    let t0 = now_ns();
    for _ in 0..ops {
        op();
    }
    (now_ns() - t0) as f64 / ops as f64
}

/// Drives one backend through the four primitives via the closures the
/// caller supplies (both view types share the same method names but no
/// trait, so the driver takes the ops pre-bound).
#[allow(clippy::too_many_arguments)]
fn bench_backend(
    table: &mut Table,
    backend: &str,
    layout: &str,
    ops: u64,
    compact: bool,
    mut add: impl FnMut(NodeId, i64),
    mut any: impl FnMut() -> Option<NodeId>,
    mut apply: impl FnMut(&[(NodeId, i64)]),
) {
    // Warm a resident member set (and its pages): `any` answers over a
    // populated view, and churn ids below never touch these.
    for i in 0..WINDOW {
        add(resident_id(compact, i), 1);
    }
    // Membership churn in alternating passes: an insert pass makes every
    // churn id a member (each add is a 0→1 crossing), the paired remove
    // pass takes each back out (1→0). Timing the passes separately keeps
    // the two primitives in their own cells while guaranteeing every
    // measured op does membership work, not a count bump.
    let mut insert_total = 0u64;
    let mut remove_total = 0u64;
    let mut done = 0u64;
    while done < ops {
        let t0 = now_ns();
        for k in 0..WINDOW {
            add(churn_id(compact, k), 1);
        }
        insert_total += now_ns() - t0;
        let t1 = now_ns();
        for k in 0..WINDOW {
            add(churn_id(compact, k), -1);
        }
        remove_total += now_ns() - t1;
        done += WINDOW;
    }
    let add_ns = insert_total as f64 / done as f64;
    let remove_ns = remove_total as f64 / done as f64;
    let any_ns = measure(
        || {
            std::hint::black_box(any());
        },
        ops,
    );
    // apply_delta: batches of 64 coalesced deltas (one epoch's survivors
    // entering the view, cancelled back out by the next batch).
    let batch: Vec<(NodeId, i64)> = (0..64).map(|k| (churn_id(compact, k), 1)).collect();
    let unbatch: Vec<(NodeId, i64)> = batch.iter().map(|&(n, _)| (n, -1)).collect();
    let mut flip = false;
    let apply_ns = measure(
        || {
            apply(if flip { &unbatch } else { &batch });
            flip = !flip;
        },
        (ops / 64).max(2),
    ) / 64.0;
    for (op, ns) in [
        ("add (0→1)", add_ns),
        ("remove (1→0)", remove_ns),
        ("any", any_ns),
        ("apply_delta/item", apply_ns),
    ] {
        table.row([
            backend.to_string(),
            layout.to_string(),
            op.to_string(),
            format!("{ns:.1}"),
        ]);
    }
}

fn main() {
    let ops = env_u64("TT_VIEW_OPS_N", 200_000);
    println!("view_ops — primitive op latency per view backend ({ops} ops/cell)\n");
    let mut table = Table::new(["backend", "ids", "op", "ns_per_op"]);
    for (layout, compact) in [("compact", true), ("sparse", false)] {
        {
            let mut v = MatchView::new();
            // Split borrows: MatchView is one object, so route each
            // primitive through a fresh closure over the same cell.
            let cell = std::cell::RefCell::new(&mut v);
            bench_backend(
                &mut table,
                "swap-remove",
                layout,
                ops,
                compact,
                |n, d| cell.borrow_mut().add(n, d),
                || cell.borrow().any(),
                |deltas| cell.borrow_mut().apply_delta(deltas.iter().copied()),
            );
        }
        {
            let mut v = OrderedMatchView::new();
            let cell = std::cell::RefCell::new(&mut v);
            bench_backend(
                &mut table,
                "btree-ordered",
                layout,
                ops,
                compact,
                |n, d| cell.borrow_mut().add(n, d),
                || cell.borrow().any(),
                |deltas| cell.borrow_mut().apply_delta(deltas.iter().copied()),
            );
        }
    }
    table.print();
    println!(
        "\n`compact` churns the upper half of a 4Ki id window (steady-state pages); \
         `sparse` strides ~1Mi ids."
    );
}
