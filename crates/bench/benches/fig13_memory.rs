//! Figure 13: average memory pages allocated per workload and maintained
//! strategy. The paper's claim: Classic and DBT carry significantly more
//! memory (shadow copies + materialized intermediates; §3.2 reports a
//! 2.5× process blow-up for DBT), while TreeToaster's views cost little
//! more than the label index.

use tt_bench::{paper_workloads, run_jitd, ExperimentConfig};
use tt_jitd::StrategyKind;
use tt_metrics::{Csv, Table};

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("Figure 13 — strategy memory (4KiB pages of maintained state)");
    println!(
        "(records={}, ops={}, threshold={}, seed={})\n",
        cfg.records, cfg.ops, cfg.crack_threshold, cfg.seed
    );

    let mut table = Table::new(["workload", "Index", "Classic", "DBT", "TT", "AST(base)"]);
    let mut csv = Csv::new([
        "workload",
        "strategy",
        "memory_pages",
        "ast_pages",
        "statm_pages",
    ]);
    for wl in paper_workloads() {
        let mut cells = vec![wl.to_string()];
        let mut ast_pages = 0usize;
        for strategy in StrategyKind::ivm_set() {
            let r = run_jitd(wl, strategy, cfg);
            ast_pages = r.ast_pages;
            cells.push(r.memory_pages.to_string());
            csv.row([
                wl.to_string(),
                strategy.label().to_string(),
                r.memory_pages.to_string(),
                r.ast_pages.to_string(),
                r.statm_pages.map_or("-".to_string(), |p| p.to_string()),
            ]);
        }
        cells.push(ast_pages.to_string());
        table.row(cells);
    }
    table.print();
    match csv.write_to_figures_dir("fig13_memory") {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
