//! Figure 14: Catalyst-style rewrite and search times vs. AST size on
//! the UNION-ALL-doubling antipattern (paper Appendix A).
//!
//! (a) total optimization time and total search time grow with AST size;
//! (b) the percentage of time in search stays high (paper: 50–60%,
//! asymptoting near 50% as the AST grows).

use tt_bench::env_u64;
use tt_metrics::{Csv, Table};
use tt_queryopt::antipattern::{expected_size, union_doubling};
use tt_queryopt::catalyst::{optimize, SearchMode};

fn main() {
    let max_level = env_u64("TT_ANTIPATTERN_MAX", 6) as usize;
    println!("Figure 14 — Catalyst-style optimizer on the UNION-doubling antipattern");
    println!("(levels 1..={max_level}; sizes grow ~4x per level)\n");

    let mut table = Table::new([
        "level",
        "ast_size",
        "log10_size",
        "total_ms",
        "search_ms",
        "search_%",
    ]);
    let mut csv = Csv::new([
        "level",
        "ast_size",
        "total_ns",
        "search_ns",
        "effective_ns",
        "ineffective_ns",
        "fixpoint_ns",
        "search_fraction",
    ]);
    // Warm-up pass so the first measured level doesn't absorb first-touch
    // costs (allocator growth, instruction cache).
    {
        let mut warm = union_doubling(2);
        let _ = optimize(&mut warm, SearchMode::NaiveScan, 60);
    }
    let reps = env_u64("TT_SCALING_REPS", 3);
    for level in 1..=max_level {
        // Best-of-N damps scheduler noise on the larger levels.
        let mut best: Option<tt_queryopt::catalyst::Breakdown> = None;
        let mut size = 0;
        for _ in 0..reps {
            let mut ast = union_doubling(level);
            size = ast.subtree_size(ast.root());
            assert_eq!(size, expected_size(level));
            let candidate = optimize(&mut ast, SearchMode::NaiveScan, 60);
            if best.is_none_or(|b| candidate.total_ns() < b.total_ns()) {
                best = Some(candidate);
            }
        }
        let bd = best.expect("at least one rep");
        table.row([
            level.to_string(),
            size.to_string(),
            format!("{:.2}", (size as f64).log10()),
            format!("{:.2}", bd.total_ns() as f64 / 1e6),
            format!("{:.2}", bd.search_ns as f64 / 1e6),
            format!("{:.0}%", 100.0 * bd.search_fraction()),
        ]);
        csv.row([
            level.to_string(),
            size.to_string(),
            bd.total_ns().to_string(),
            bd.search_ns.to_string(),
            bd.effective_ns.to_string(),
            bd.ineffective_ns.to_string(),
            bd.fixpoint_ns.to_string(),
            format!("{:.4}", bd.search_fraction()),
        ]);
    }
    table.print();
    println!("\nPaper: search takes 50-60% at small sizes, dropping toward ~50% asymptotically,");
    println!("while absolute search time continues scaling linearly with the AST.");
    match csv.write_to_figures_dir("fig14_spark_scaling") {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
