//! Figure 11: total latency (search + maintenance per optimizer
//! iteration) vs. memory pages allocated, per strategy and workload —
//! the scatter behind the paper's Figure 2 quadrant. TreeToaster should
//! sit in the fast/low-memory corner: bolt-on latency at near-naive
//! memory.

use tt_bench::{paper_workloads, run_jitd, ExperimentConfig};
use tt_jitd::StrategyKind;
use tt_metrics::{Csv, Table};

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("Figure 11 — average total latency vs. memory pages, by strategy and workload");
    println!(
        "(records={}, ops={}, threshold={}, seed={}; pages are 4KiB of strategy state)\n",
        cfg.records, cfg.ops, cfg.crack_threshold, cfg.seed
    );

    let mut table = Table::new([
        "workload",
        "strategy",
        "total_latency_ns",
        "memory_pages",
        "ast_pages",
        "statm_pages",
    ]);
    let mut csv = Csv::new([
        "workload",
        "strategy",
        "total_latency_ns",
        "memory_pages",
        "ast_pages",
        "statm_pages",
    ]);
    for wl in paper_workloads() {
        for strategy in StrategyKind::all() {
            let r = run_jitd(wl, strategy, cfg);
            let latency = r.mean_total_ns();
            let statm = r.statm_pages.map_or("-".to_string(), |p| p.to_string());
            table.row([
                wl.to_string(),
                strategy.label().to_string(),
                format!("{:.0}", latency),
                r.memory_pages.to_string(),
                r.ast_pages.to_string(),
                statm.clone(),
            ]);
            csv.row([
                wl.to_string(),
                strategy.label().to_string(),
                format!("{:.0}", latency),
                r.memory_pages.to_string(),
                r.ast_pages.to_string(),
                statm,
            ]);
        }
    }
    table.print();
    match csv.write_to_figures_dir("fig11_latency_vs_memory") {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
