//! Figure 1: time breakdown of the Catalyst-style optimizer on the 22
//! TPC-H-shaped queries — Search / Ineffective Rewrites / Effective
//! Rewrites / Fixpoint Loop per query, plus the aggregate share of time
//! spent searching (the paper reports 33–45%).

use tt_bench::env_u64;
use tt_metrics::{Csv, Table};
use tt_queryopt::catalyst::{optimize, SearchMode};
use tt_queryopt::tpch;

fn main() {
    let seed = env_u64("TT_SEED", 42);
    let reps = env_u64("TT_FIG1_REPS", 3);
    println!("Figure 1 — Catalyst-style optimizer time breakdown on TPC-H-shaped queries");
    println!("(seed={seed}, best of {reps} reps; times in microseconds)\n");

    let mut table = Table::new([
        "query",
        "search_us",
        "ineffective_us",
        "effective_us",
        "fixpoint_us",
        "total_us",
        "search_%",
    ]);
    let mut csv = Csv::new([
        "query",
        "search_ns",
        "ineffective_ns",
        "effective_ns",
        "fixpoint_ns",
        "total_ns",
        "search_fraction",
    ]);
    let (mut sum_search, mut sum_total) = (0u64, 0u64);
    for q in 1..=22 {
        // Best-of-N on total time damps descheduling spikes (a single
        // stalled rep otherwise dominates the sum-based aggregate).
        let mut best: Option<(u64, u64, u64, u64)> = None;
        for _rep in 0..reps {
            let mut ast = tpch::build_query(q, seed);
            let bd = optimize(&mut ast, SearchMode::NaiveScan, 100);
            let cand = (
                bd.search_ns,
                bd.ineffective_ns,
                bd.effective_ns,
                bd.fixpoint_ns,
            );
            let total = |x: &(u64, u64, u64, u64)| x.0 + x.1 + x.2 + x.3;
            if best.is_none_or(|b| total(&cand) < total(&b)) {
                best = Some(cand);
            }
        }
        let (s, i, e, f) = best.expect("at least one rep");
        let total = s + i + e + f;
        sum_search += s;
        sum_total += total;
        table.row([
            format!("Q{q}"),
            format!("{:.1}", s as f64 / 1e3),
            format!("{:.1}", i as f64 / 1e3),
            format!("{:.1}", e as f64 / 1e3),
            format!("{:.1}", f as f64 / 1e3),
            format!("{:.1}", total as f64 / 1e3),
            format!("{:.0}%", 100.0 * s as f64 / total.max(1) as f64),
        ]);
        csv.row([
            format!("{q}"),
            s.to_string(),
            i.to_string(),
            e.to_string(),
            f.to_string(),
            total.to_string(),
            format!("{:.4}", s as f64 / total.max(1) as f64),
        ]);
    }
    table.print();
    println!(
        "\nAggregate search share: {:.0}% (paper: 33-45% of optimizer time in search)",
        100.0 * sum_search as f64 / sum_total.max(1) as f64
    );
    match csv.write_to_figures_dir("fig01_catalyst_breakdown") {
        Ok(path) => println!("CSV written to {}", path.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
